#include "runtime/threaded_lts.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <thread>

#include "common/timer.hpp"
#include "perf/roofline.hpp"
#include "resilience/error.hpp"

namespace ltswave::runtime {

ThreadedLtsSolver::ThreadedLtsSolver(const sem::WaveOperator& op,
                                     const core::LevelAssignment& levels,
                                     const core::LtsStructure& structure,
                                     const partition::Partition& part, SchedulerConfig cfg,
                                     core::Integrator integ)
    : op_(&op),
      levels_(&levels),
      structure_(&structure),
      part_(&part),
      cfg_(cfg),
      integ_(integ),
      nranks_(part.num_parts),
      ncomp_(op.ncomp()),
      dt_(levels.dt) {
  LTS_CHECK(part.part.size() == static_cast<std::size_t>(op.space().num_elems()));
  LTS_CHECK(nranks_ >= 1);
  const auto& space = op.space();
  ndof_ = static_cast<std::size_t>(space.num_global_nodes()) * static_cast<std::size_t>(ncomp_);

  // One inverse-mass entry per node; all components share it.
  inv_mass_ = space.inv_mass();

  // Untouched allocations: first_touch_rank_buffers() has each pool worker
  // zero the rows it owns, which places the pages (see the file comment).
  u_ = std::make_unique_for_overwrite<real_t[]>(ndof_);
  v_ = std::make_unique_for_overwrite<real_t[]>(ndof_);
  scratch_ = std::make_unique_for_overwrite<real_t[]>(ndof_);
  const level_t nl = levels.num_levels;
  cumulative_.assign(nl > 1 ? ndof_ : 0, 0.0);
  forces_.assign(static_cast<std::size_t>(std::max(0, nl - 1)), std::vector<real_t>(ndof_, 0.0));
  vt_.assign(static_cast<std::size_t>(std::max(0, nl - 1)), std::vector<real_t>(ndof_, 0.0));
  usave_.assign(static_cast<std::size_t>(std::max(0, nl - 1)), std::vector<real_t>(ndof_, 0.0));

  build_rank_data();
  build_participation();
  if (cfg_.mode == SchedulerMode::LevelAwareSteal) build_chunks();

  level_barriers_.resize(static_cast<std::size_t>(nl));
  for (level_t k = 1; k <= nl; ++k) {
    const auto n = static_cast<std::ptrdiff_t>(group_[static_cast<std::size_t>(k - 1)].size());
    level_barriers_[static_cast<std::size_t>(k - 1)] =
        n > 0 ? std::make_unique<std::barrier<>>(n) : nullptr;
  }

  // Atomic slots are not copy-assignable, so size the vectors by (move-)
  // constructing fresh ones; value-initialized atomics start at zero.
  busy_ = std::vector<std::atomic<double>>(static_cast<std::size_t>(nranks_));
  stall_ = std::vector<std::atomic<double>>(static_cast<std::size_t>(nranks_));
  steals_ = std::vector<std::atomic<std::int64_t>>(static_cast<std::size_t>(nranks_));

  // The persistent worker team: spawned once, reused by every run_cycles.
  pool_ = std::make_unique<ThreadPool>(static_cast<int>(nranks_), cfg_.oversubscribe);

  // NUMA-aware placement: every rank's hot buffers — its plan block slabs,
  // accumulation buffer, workspace, and chunk buffers — are allocated/filled
  // by its own pool worker, so first touch pins the pages to the worker's
  // memory node.
  first_touch_rank_buffers();
  if (cfg_.mode == SchedulerMode::LevelAwareSteal) build_steal_reduction();
}

void ThreadedLtsSolver::first_touch_rank_buffers() {
  const level_t nl = levels_->num_levels;
  pool_->run([this, nl](int worker) {
    const auto r = static_cast<rank_t>(worker);
    auto& rd = ranks_[static_cast<std::size_t>(r)];
    // This rank's plan groups are contiguous: (r, 1) .. (r, nl).
    const index_t first = plan_->group_blocks(group_index(r, 1)).first;
    const index_t last = plan_->group_blocks(group_index(r, nl)).last;
    plan_->fill(first, last);
    rd.private_buf.assign(ndof_, 0.0);
    rd.workspace = std::make_unique<sem::KernelWorkspace>(op_->make_workspace());
    const auto nc = static_cast<std::size_t>(ncomp_);
    for (auto& level_chunks : rd.chunks)
      for (auto& ch : level_chunks) ch.acc.assign(ch.rows.size() * nc, 0.0);
    // First touch of the shared u/v/scratch state: zero the rows this rank
    // owns (every global node has an owner < nranks_, so together the workers
    // initialize every entry — and each page lands on its updater's node).
    for (std::size_t g = 0; g < row_owner_.size(); ++g) {
      if (row_owner_[g] != r) continue;
      for (std::size_t c = 0; c < nc; ++c) {
        u_[g * nc + c] = 0.0;
        v_[g * nc + c] = 0.0;
        scratch_[g * nc + c] = 0.0;
      }
    }
  });
}

void ThreadedLtsSolver::build_rank_data() {
  const auto& space = op_->space();
  const auto& st = *structure_;
  const level_t nl = levels_->num_levels;
  const int npts = space.nodes_per_elem();
  const gindex_t nn = space.num_global_nodes();

  // Global row owner: min rank among elements containing the node. Kept as a
  // member — source/receiver registration resolves owning ranks through it.
  row_owner_.assign(static_cast<std::size_t>(nn), nranks_);
  for (index_t e = 0; e < space.num_elems(); ++e) {
    const rank_t r = part_->part[static_cast<std::size_t>(e)];
    const gindex_t* l2g = space.elem_nodes(e);
    for (int q = 0; q < npts; ++q) {
      auto& o = row_owner_[static_cast<std::size_t>(l2g[q])];
      o = std::min(o, r);
    }
  }

  ranks_.resize(static_cast<std::size_t>(nranks_));
  for (auto& rd : ranks_) {
    rd.eval_elems.assign(static_cast<std::size_t>(nl), {});
    rd.private_rows.assign(static_cast<std::size_t>(nl), {});
    rd.solo_rows.assign(static_cast<std::size_t>(nl), {});
    rd.shared_rows.assign(static_cast<std::size_t>(nl), {});
    rd.shared_offsets.assign(static_cast<std::size_t>(nl), {});
    rd.shared_touchers.assign(static_cast<std::size_t>(nl), {});
    rd.owned_rows.assign(static_cast<std::size_t>(nl), {});
    rd.update_rows.assign(static_cast<std::size_t>(nl), {});
    rd.recon_rows.assign(static_cast<std::size_t>(nl), {});
    rd.sources.assign(static_cast<std::size_t>(nl), {});
    rd.phase_seconds = std::vector<std::atomic<double>>(static_cast<std::size_t>(nl) + 5);
    rd.phase_count = std::vector<std::atomic<std::int64_t>>(static_cast<std::size_t>(nl) + 5);
    // private_buf and workspace are allocated in first_touch_rank_buffers()
    // by the owning pool worker (NUMA first touch).
  }

  for (level_t k = 1; k <= nl; ++k) {
    // Split E(k) by element owner and gather per-rank private rows.
    std::vector<std::pair<gindex_t, rank_t>> touch_pairs; // (row, rank)
    for (index_t e : st.eval_elems[static_cast<std::size_t>(k - 1)]) {
      const rank_t r = part_->part[static_cast<std::size_t>(e)];
      ranks_[static_cast<std::size_t>(r)].eval_elems[static_cast<std::size_t>(k - 1)].push_back(e);
      const gindex_t* l2g = space.elem_nodes(e);
      for (int q = 0; q < npts; ++q) touch_pairs.emplace_back(l2g[q], r);
    }
    std::sort(touch_pairs.begin(), touch_pairs.end());
    touch_pairs.erase(std::unique(touch_pairs.begin(), touch_pairs.end()), touch_pairs.end());

    // Per-rank private rows (rows their own elements touch).
    for (const auto& [g, r] : touch_pairs)
      ranks_[static_cast<std::size_t>(r)].private_rows[static_cast<std::size_t>(k - 1)].push_back(g);

    // Reduction ownership: the minimum touching rank owns the row at this
    // level; rows with one toucher are copies, others sum a toucher list.
    std::size_t i = 0;
    while (i < touch_pairs.size()) {
      std::size_t j = i;
      while (j < touch_pairs.size() && touch_pairs[j].first == touch_pairs[i].first) ++j;
      const gindex_t g = touch_pairs[i].first;
      const rank_t owner = touch_pairs[i].second; // sorted -> min rank first
      auto& rd = ranks_[static_cast<std::size_t>(owner)];
      if (j - i == 1) {
        rd.solo_rows[static_cast<std::size_t>(k - 1)].emplace_back(g, touch_pairs[i].second);
      } else {
        auto& offs = rd.shared_offsets[static_cast<std::size_t>(k - 1)];
        auto& tchs = rd.shared_touchers[static_cast<std::size_t>(k - 1)];
        if (offs.empty()) offs.push_back(0);
        rd.shared_rows[static_cast<std::size_t>(k - 1)].push_back(g);
        for (std::size_t p = i; p < j; ++p) tchs.push_back(touch_pairs[p].second);
        offs.push_back(static_cast<index_t>(tchs.size()));
      }
      rd.owned_rows[static_cast<std::size_t>(k - 1)].push_back(g);
      i = j;
    }

    // Row-update ownership uses the global row owner.
    for (gindex_t g : st.update_rows[static_cast<std::size_t>(k - 1)])
      ranks_[static_cast<std::size_t>(row_owner_[static_cast<std::size_t>(g)])].update_rows[static_cast<std::size_t>(k - 1)].push_back(g);
    for (gindex_t g : st.recon_rows[static_cast<std::size_t>(k - 1)])
      ranks_[static_cast<std::size_t>(row_owner_[static_cast<std::size_t>(g)])].recon_rows[static_cast<std::size_t>(k - 1)].push_back(g);
  }

  // The batched execution plan: one group per (rank, level) in that order —
  // a rank's blocks are contiguous (first-touch fill range) and a level group
  // never mixes ranks, so steal chunks of whole blocks stay rank-pure. Each
  // group's elements are reordered homogeneous-first so the leading blocks
  // take the mask-free fast gather; eval_elems keeps the same order, which
  // keeps block lanes and element lists aligned for the chunk row sets.
  std::vector<sem::BatchPlan::Group> plan_groups;
  plan_groups.reserve(static_cast<std::size_t>(nranks_) * static_cast<std::size_t>(nl));
  for (rank_t r = 0; r < nranks_; ++r)
    for (level_t k = 1; k <= nl; ++k) {
      auto& elems = ranks_[static_cast<std::size_t>(r)].eval_elems[static_cast<std::size_t>(k - 1)];
      elems = sem::order_homogeneous_first(space, elems, k, st.node_level);
      sem::BatchPlan::Group g;
      g.elems = elems;
      g.level = k;
      g.node_level = st.node_level;
      plan_groups.push_back(std::move(g));
    }
  plan_ = std::make_unique<sem::BatchPlan>(space, ncomp_, std::move(plan_groups),
                                           sem::BatchPlan::Fill::Deferred);
  blocks_per_cycle_ = 0;
  for (rank_t r = 0; r < nranks_; ++r)
    for (level_t k = 1; k <= nl; ++k)
      blocks_per_cycle_ +=
          level_rate(k) * static_cast<std::int64_t>(plan_->group_blocks(group_index(r, k)).count());
}

void ThreadedLtsSolver::build_participation() {
  const level_t nl = levels_->num_levels;
  part_mask_.assign(static_cast<std::size_t>(nl) * static_cast<std::size_t>(nranks_), 0);
  group_.assign(static_cast<std::size_t>(nl), {});

  for (rank_t r = 0; r < nranks_; ++r) {
    const auto& rd = ranks_[static_cast<std::size_t>(r)];
    // A rank takes part in level-k barriers when it has work at level k or at
    // any finer level (monotone closure: fine substeps are nested inside
    // coarse phases, and the row/force state written at level k is published
    // to coarser readers through the enclosing coarser barrier — so finer
    // ranks must join coarser barriers, never the other way around). The
    // legacy barrier-all mode keeps everyone in every level.
    bool finer = false;
    for (level_t k = nl; k >= 1; --k) {
      const auto L = static_cast<std::size_t>(k - 1);
      const bool work = !rd.eval_elems[L].empty() || !rd.private_rows[L].empty() ||
                        !rd.solo_rows[L].empty() || !rd.shared_rows[L].empty() ||
                        !rd.update_rows[L].empty() || !rd.recon_rows[L].empty();
      finer = finer || work;
      const bool take_part = cfg_.mode == SchedulerMode::BarrierAll || finer;
      part_mask_[L * static_cast<std::size_t>(nranks_) + static_cast<std::size_t>(r)] =
          take_part ? 1 : 0;
    }
  }
  for (level_t k = 1; k <= nl; ++k)
    for (rank_t r = 0; r < nranks_; ++r)
      if (participates(r, k)) group_[static_cast<std::size_t>(k - 1)].push_back(r);
}

void ThreadedLtsSolver::build_chunks() {
  const auto& space = op_->space();
  const level_t nl = levels_->num_levels;
  const int npts = space.nodes_per_elem();
  const int W = plan_->width();

  for (rank_t r = 0; r < nranks_; ++r) {
    auto& rd = ranks_[static_cast<std::size_t>(r)];
    rd.chunks.assign(static_cast<std::size_t>(nl), {});
    rd.chunk_cursor = std::make_unique<std::atomic<index_t>[]>(static_cast<std::size_t>(nl));
    rd.red_offsets.assign(static_cast<std::size_t>(nl), {});
    rd.red_sources.assign(static_cast<std::size_t>(nl), {});
    for (level_t k = 1; k <= nl; ++k) {
      const auto L = static_cast<std::size_t>(k - 1);
      const auto range = plan_->group_blocks(group_index(r, k));
      const index_t nb = range.count();
      if (nb == 0) {
        rd.chunk_cursor[L].store(0, std::memory_order_relaxed);
        continue;
      }
      // Chunks are whole plan blocks, so stealing moves block-aligned work
      // and the batched kernel never splits a block. Several chunks per rank
      // so idle participants find work to steal, but large enough that the
      // per-chunk launch stays negligible; an explicit chunk_elems is rounded
      // up to whole blocks.
      index_t size_blocks;
      if (cfg_.chunk_elems > 0) {
        size_blocks = std::max<index_t>(1, (cfg_.chunk_elems + W - 1) / W);
      } else {
        const auto n = static_cast<index_t>(rd.eval_elems[L].size());
        const index_t size_elems = std::clamp<index_t>(n / 8, index_t{4}, index_t{128});
        size_blocks = std::max<index_t>(1, (size_elems + W - 1) / W);
      }
      for (index_t b = range.first; b < range.last; b += size_blocks) {
        Chunk ch;
        ch.first_block = b;
        ch.last_block = std::min<index_t>(b + size_blocks, range.last);
        for (index_t blk = ch.first_block; blk < ch.last_block; ++blk) {
          const index_t* elems = plan_->block_elems(blk);
          const int fill = plan_->block_fill(blk);
          for (int l = 0; l < fill; ++l) {
            const gindex_t* l2g = space.elem_nodes(elems[l]);
            for (int q = 0; q < npts; ++q) ch.rows.push_back(l2g[q]);
          }
        }
        std::sort(ch.rows.begin(), ch.rows.end());
        ch.rows.erase(std::unique(ch.rows.begin(), ch.rows.end()), ch.rows.end());
        // ch.acc is allocated by the owning pool worker (first touch).
        rd.chunks[L].push_back(std::move(ch));
      }
      // Cursors start *exhausted*: a queue only opens when its owner resets
      // it at the start of an eval phase. A zero-initialized cursor would let
      // a fast thief drain the queue before the owner's first reset, after
      // which the owner's reset replays every chunk — double contributions.
      rd.chunk_cursor[L].store(static_cast<index_t>(rd.chunks[L].size()),
                               std::memory_order_relaxed);
    }
  }
}

void ThreadedLtsSolver::build_steal_reduction() {
  const auto& space = op_->space();
  const level_t nl = levels_->num_levels;
  const auto nc = static_cast<std::size_t>(ncomp_);

  // Static reduction map: every chunk-row contribution is attached to the
  // row's owning rank in (rank, chunk) ascending order. The association of
  // the floating-point sum is thereby fixed at build time — it cannot depend
  // on which thread ends up executing a chunk, so the stealing scheduler is
  // bitwise reproducible run to run.
  const auto nn = static_cast<std::size_t>(space.num_global_nodes());
  std::vector<rank_t> owner_of(nn);
  std::vector<index_t> pos_of(nn);
  for (level_t k = 1; k <= nl; ++k) {
    const auto L = static_cast<std::size_t>(k - 1);
    // Reset per level: a stale entry from a coarser level would satisfy the
    // ownership check below and silently misroute a contribution.
    std::fill(owner_of.begin(), owner_of.end(), rank_t{-1});
    for (rank_t r = 0; r < nranks_; ++r) {
      const auto& owned = ranks_[static_cast<std::size_t>(r)].owned_rows[L];
      for (std::size_t j = 0; j < owned.size(); ++j) {
        owner_of[static_cast<std::size_t>(owned[j])] = r;
        pos_of[static_cast<std::size_t>(owned[j])] = static_cast<index_t>(j);
      }
    }
    std::vector<std::vector<std::pair<index_t, const real_t*>>> contribs(
        static_cast<std::size_t>(nranks_));
    for (rank_t r = 0; r < nranks_; ++r)
      for (const auto& ch : ranks_[static_cast<std::size_t>(r)].chunks[L])
        for (std::size_t i = 0; i < ch.rows.size(); ++i) {
          const auto g = static_cast<std::size_t>(ch.rows[i]);
          LTS_CHECK(owner_of[g] >= 0);
          contribs[static_cast<std::size_t>(owner_of[g])].emplace_back(pos_of[g],
                                                                       ch.acc.data() + i * nc);
        }
    for (rank_t r = 0; r < nranks_; ++r) {
      auto& rd = ranks_[static_cast<std::size_t>(r)];
      auto& list = contribs[static_cast<std::size_t>(r)];
      // stable: contributions for one row keep their (rank, chunk) order.
      std::stable_sort(list.begin(), list.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      const std::size_t nrows = rd.owned_rows[L].size();
      rd.red_offsets[L].assign(nrows + 1, 0);
      rd.red_sources[L].reserve(list.size());
      std::size_t li = 0;
      for (std::size_t j = 0; j < nrows; ++j) {
        rd.red_offsets[L][j] = static_cast<index_t>(rd.red_sources[L].size());
        while (li < list.size() && static_cast<std::size_t>(list[li].first) == j) {
          rd.red_sources[L].push_back(list[li].second);
          ++li;
        }
      }
      rd.red_offsets[L][nrows] = static_cast<index_t>(rd.red_sources[L].size());
      LTS_CHECK(li == list.size());
    }
  }
}

ThreadedLtsSolver::~ThreadedLtsSolver() {
  // Tear the pool down before any member it touches: after a watchdog
  // timeout, run_cycles throws while workers are still draining the abandoned
  // generation, and those workers read/write u_, busy_ and friends — and call
  // pool_->beat(), so the generation must drain while pool_ is still set
  // (unique_ptr::reset() nulls the pointer *before* ~ThreadPool joins).
  if (pool_) pool_->drain();
  pool_.reset();
}

rank_t ThreadedLtsSolver::level_participants(level_t k) const {
  LTS_CHECK(k >= 1 && k <= levels_->num_levels);
  return static_cast<rank_t>(group_[static_cast<std::size_t>(k - 1)].size());
}

std::int64_t ThreadedLtsSolver::element_applies() const noexcept {
  return cycles_done_ * structure_->applies_per_cycle();
}

std::vector<double> ThreadedLtsSolver::busy_seconds() const {
  std::vector<double> out(busy_.size());
  for (std::size_t r = 0; r < busy_.size(); ++r) out[r] = busy_[r].load(std::memory_order_relaxed);
  return out;
}

std::vector<double> ThreadedLtsSolver::stall_seconds() const {
  std::vector<double> out(stall_.size());
  for (std::size_t r = 0; r < stall_.size(); ++r)
    out[r] = stall_[r].load(std::memory_order_relaxed);
  return out;
}

std::vector<std::int64_t> ThreadedLtsSolver::steal_counts() const {
  std::vector<std::int64_t> out(steals_.size());
  for (std::size_t r = 0; r < steals_.size(); ++r)
    out[r] = steals_[r].load(std::memory_order_relaxed);
  return out;
}

void ThreadedLtsSolver::reset_counters() {
  for (auto& b : busy_) b.store(0.0, std::memory_order_relaxed);
  for (auto& s : stall_) s.store(0.0, std::memory_order_relaxed);
  for (auto& s : steals_) s.store(0, std::memory_order_relaxed);
  for (auto& rd : ranks_) {
    for (auto& p : rd.phase_seconds) p.store(0.0, std::memory_order_relaxed);
    for (auto& p : rd.phase_count) p.store(0, std::memory_order_relaxed);
  }
}

void ThreadedLtsSolver::fill_phases(perf::RunReport& report) const {
  const level_t nl = levels_->num_levels;
  const auto sum_slot = [&](std::size_t slot, const std::string& name) {
    double seconds = 0;
    std::int64_t count = 0;
    for (const auto& rd : ranks_) {
      seconds += rd.phase_seconds[slot].load(std::memory_order_relaxed);
      count += rd.phase_count[slot].load(std::memory_order_relaxed);
    }
    report.add_phase(name, seconds, count);
  };
  for (level_t k = 1; k <= nl; ++k) sum_slot(slot_eval(k), "eval.L" + std::to_string(k));
  sum_slot(slot_reduce(), "reduce");
  sum_slot(slot_update(), "update");
  if (!sources_.empty()) sum_slot(slot_sources(), "sources");
  if (!traces_.empty()) sum_slot(slot_receivers(), "receivers");
  sum_slot(slot_barrier(), "barrier");
}

perf::RunReport ThreadedLtsSolver::run_report() const {
  perf::RunReport r;
  r.executor = "threaded/" + to_string(cfg_.mode);
  r.cycles = cycles_done_;
  r.time = static_cast<double>(time());
  r.element_applies = element_applies();
  r.blocks_applied = blocks_applied();
  r.rank_busy_seconds = busy_seconds();
  r.rank_stall_seconds = stall_seconds();
  r.rank_steal_counts = steal_counts();
  fill_phases(r);
  r.roofline = perf::roofline_for_plan(*plan_);
  return r;
}

void ThreadedLtsSolver::add_source(const sem::PointSource& src) {
  LTS_CHECK(src.node >= 0 && src.node < op_->space().num_global_nodes());
  sources_.push_back(src);
  const level_t rho = structure_->node_rho[static_cast<std::size_t>(src.node)];
  const rank_t owner = row_owner_[static_cast<std::size_t>(src.node)];
  ranks_[static_cast<std::size_t>(owner)].sources[static_cast<std::size_t>(rho - 1)].push_back(src);
}

std::size_t ThreadedLtsSolver::add_receiver(gindex_t node, int component) {
  LTS_CHECK(node >= 0 && node < op_->space().num_global_nodes());
  LTS_CHECK(component >= 0 && component < ncomp_);
  const std::size_t idx = traces_.size();
  traces_.push_back(Trace{node, component, {}, {}});
  const rank_t owner = row_owner_[static_cast<std::size_t>(node)];
  ranks_[static_cast<std::size_t>(owner)].receivers.push_back(idx);
  return idx;
}

void ThreadedLtsSolver::adopt_state_from(const ThreadedLtsSolver& prev) {
  LTS_CHECK_MSG(op_ == prev.op_ && levels_ == prev.levels_ && structure_ == prev.structure_,
                "adopt_state_from requires the same operator/levels/structure");
  LTS_CHECK(ndof_ == prev.ndof_);
  LTS_CHECK_MSG(sources_.empty() && traces_.empty(),
                "adopt_state_from expects a freshly built solver");
  std::copy(prev.u_.get(), prev.u_.get() + ndof_, u_.get());
  std::copy(prev.v_.get(), prev.v_.get() + ndof_, v_.get());
  std::copy(prev.scratch_.get(), prev.scratch_.get() + ndof_, scratch_.get());
  cumulative_ = prev.cumulative_;
  forces_ = prev.forces_;
  vt_ = prev.vt_;
  usave_ = prev.usave_;
  cycles_done_ = prev.cycles_done_;
  for (const auto& s : prev.sources_) add_source(s);
  for (const auto& t : prev.traces_) {
    const std::size_t idx = add_receiver(t.node, t.component);
    traces_[idx].times = t.times;
    traces_[idx].values = t.values;
  }
}

void ThreadedLtsSolver::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  LTS_CHECK(u0.size() == ndof_ && v0.size() == ndof_);
  std::copy(u0.begin(), u0.end(), u_.get());
  std::fill(scratch_.get(), scratch_.get() + ndof_, 0.0);
  // One-shot initialization apply through the per-element path (the solver's
  // own plan is level-restricted; building the operator's full-mesh plan for
  // a single apply would duplicate every metric slab). The workspace is rank
  // 0's block-sized one — sized once per (order, block width), not re-derived
  // per set_state call.
  std::vector<index_t> all(static_cast<std::size_t>(op_->space().num_elems()));
  for (std::size_t e = 0; e < all.size(); ++e) all[e] = static_cast<index_t>(e);
  op_->apply_add(all, u_.get(), scratch_.get(), *ranks_[0].workspace);
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  if (sources_.empty()) {
    for (std::size_t g = 0; g < inv_mass_.size(); ++g) {
      const real_t im = inv_mass_[g];
      for (std::size_t c = 0; c < nc; ++c)
        v_[g * nc + c] = v0[g * nc + c] + 0.5 * dt_ * im * scratch_[g * nc + c];
    }
  } else {
    // v^{-1/2} = v(0) - dt/2 * Minv (f(0) - K u0), exactly as the serial
    // solvers compute the staggered start when sources are present.
    std::vector<real_t> f(ndof_, 0.0);
    for (const auto& s : sources_) s.accumulate(0.0, ncomp_, f.data());
    for (std::size_t g = 0; g < inv_mass_.size(); ++g) {
      const real_t im = inv_mass_[g];
      for (std::size_t c = 0; c < nc; ++c)
        v_[g * nc + c] = v0[g * nc + c] - 0.5 * dt_ * im * (f[g * nc + c] - scratch_[g * nc + c]);
    }
  }
  std::fill(scratch_.get(), scratch_.get() + ndof_, 0.0);
  for (auto& f : forces_) std::fill(f.begin(), f.end(), 0.0);
  if (!cumulative_.empty()) std::fill(cumulative_.begin(), cumulative_.end(), 0.0);
  for (auto& t : traces_) {
    t.times.clear();
    t.values.clear();
  }
  cycles_done_ = 0;
  time_offset_ = 0;
  fault_fired_.store(false, std::memory_order_relaxed);
}

void ThreadedLtsSolver::adopt_raw_state(std::span<const real_t> u, std::span<const real_t> v_half,
                                        real_t time, std::int64_t cycles_done) {
  LTS_CHECK(u.size() == ndof_ && v_half.size() == ndof_);
  LTS_CHECK(cycles_done >= 0);
  std::copy(u.begin(), u.end(), u_.get());
  std::copy(v_half.begin(), v_half.end(), v_.get());
  cycles_done_ = cycles_done;
  // When the adopted clock sits exactly on the cycle grid (same-dt restore),
  // the offset must be exactly 0.0 or resumed sample times drift by an ulp:
  // FP contraction would otherwise fuse this into fma(-cycles, dt, time) and
  // subtract the *exact* product instead of the rounded one.
  const real_t elapsed = static_cast<real_t>(cycles_done) * dt_;
  time_offset_ = (time == elapsed) ? real_t(0) : time - elapsed;
  std::fill(scratch_.get(), scratch_.get() + ndof_, 0.0);
  if (!cumulative_.empty()) std::fill(cumulative_.begin(), cumulative_.end(), 0.0);
  for (auto& f : forces_) std::fill(f.begin(), f.end(), 0.0);
  for (auto& w : vt_) std::fill(w.begin(), w.end(), 0.0);
  for (auto& w : usave_) std::fill(w.begin(), w.end(), 0.0);
}

void ThreadedLtsSolver::import_accumulators(const std::vector<std::vector<real_t>>& forces,
                                            std::span<const real_t> cumulative) {
  if (forces.size() != forces_.size() || cumulative.size() != cumulative_.size()) return;
  for (std::size_t k = 0; k < forces.size(); ++k)
    if (forces[k].size() != forces_[k].size()) return;
  for (std::size_t k = 0; k < forces.size(); ++k)
    std::copy(forces[k].begin(), forces[k].end(), forces_[k].begin());
  std::copy(cumulative.begin(), cumulative.end(), cumulative_.begin());
}

void ThreadedLtsSolver::sync(rank_t r, level_t k) {
  if (!participates(r, k)) return;
  const WallTimer t;
  level_barriers_[static_cast<std::size_t>(k - 1)]->arrive_and_wait();
  const double s = t.seconds();
  stall_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
  tally(ranks_[static_cast<std::size_t>(r)], slot_barrier(), s);
}

void ThreadedLtsSolver::run_chunk(RankData& self, Chunk& chunk) {
  // The executing thread accumulates the chunk's block contributions in its
  // own private buffer (zeroed on the chunk's rows), then copies them out to
  // the chunk's acc buffer. The owner reduces acc buffers in a fixed order,
  // so the result is independent of which thread ran the chunk. Chunks are
  // whole plan blocks, so the batched kernel runs unsplit.
  const auto nc = static_cast<std::size_t>(ncomp_);
  real_t* buf = self.private_buf.data();
  for (const gindex_t g : chunk.rows)
    for (std::size_t c = 0; c < nc; ++c) buf[static_cast<std::size_t>(g) * nc + c] = 0.0;
  op_->apply_add_blocks(*plan_, chunk.first_block, chunk.last_block, u_.get(), buf,
                        *self.workspace);
  real_t* acc = chunk.acc.data();
  for (std::size_t i = 0; i < chunk.rows.size(); ++i) {
    const std::size_t base = static_cast<std::size_t>(chunk.rows[i]) * nc;
    for (std::size_t c = 0; c < nc; ++c) acc[i * nc + c] = buf[base + c];
  }
}

void ThreadedLtsSolver::eval_phase(rank_t r, level_t k) {
  if (!participates(r, k)) return;
  auto& rd = ranks_[static_cast<std::size_t>(r)];
  const auto L = static_cast<std::size_t>(k - 1);
  const bool steal = cfg_.mode == SchedulerMode::LevelAwareSteal;
  const WallTimer timer;

  if (steal) {
    // Chunked evaluation with work stealing among the level's participants;
    // every chunk is a whole-block range of the batched plan.
    auto& my_cursor = rd.chunk_cursor[L];
    my_cursor.store(0, std::memory_order_relaxed);
    auto& mine = rd.chunks[L];
    for (index_t c;
         (c = my_cursor.fetch_add(1, std::memory_order_relaxed)) < static_cast<index_t>(mine.size());)
      run_chunk(rd, mine[static_cast<std::size_t>(c)]);

    const auto& grp = group_[L];
    if (grp.size() > 1) {
      const auto pos = static_cast<std::size_t>(
          std::lower_bound(grp.begin(), grp.end(), r) - grp.begin());
      for (std::size_t off = 1; off < grp.size(); ++off) {
        auto& vd = ranks_[static_cast<std::size_t>(grp[(pos + off) % grp.size()])];
        auto& theirs = vd.chunks[L];
        for (index_t c; (c = vd.chunk_cursor[L].fetch_add(1, std::memory_order_relaxed)) <
                        static_cast<index_t>(theirs.size());) {
          run_chunk(rd, theirs[static_cast<std::size_t>(c)]);
          steals_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  } else {
    // Private batched accumulation of this rank's share of E(k).
    for (gindex_t g : rd.private_rows[L])
      for (int c = 0; c < ncomp_; ++c)
        rd.private_buf[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)] = 0.0;
    const auto range = plan_->group_blocks(group_index(r, k));
    op_->apply_add_blocks(*plan_, range.first, range.last, u_.get(), rd.private_buf.data(),
                          *rd.workspace);
  }
  {
    const double s = timer.seconds();
    busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
    tally(rd, slot_eval(k), s);
  }

  sync(r, k); // all private contributions complete

  // Reduction (the "MPI exchange"): owners combine contributions, scale by
  // Minv, and refresh the frozen-force accumulators.
  const WallTimer timer2;
  const bool track_force = k < levels_->num_levels;
  auto fold = [&](gindex_t g, real_t contrib, int c) {
    const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
    const real_t fresh = inv_mass_[static_cast<std::size_t>(g)] * contrib;
    scratch_[i] = fresh;
    if (track_force) {
      auto& fk = forces_[L];
      cumulative_[i] += fresh - fk[i];
      fk[i] = fresh;
    }
  };
  if (steal) {
    // Owners walk the static chunk-contribution lists built alongside the
    // chunks: each owned row sums its touching chunks' acc entries in the
    // fixed (rank, chunk) order, independent of which thread ran each chunk.
    const auto& owned = rd.owned_rows[L];
    const auto& offs = rd.red_offsets[L];
    const auto& srcs = rd.red_sources[L];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      const gindex_t g = owned[j];
      for (int c = 0; c < ncomp_; ++c) {
        real_t sum = 0;
        for (index_t s = offs[j]; s < offs[j + 1]; ++s)
          sum += srcs[static_cast<std::size_t>(s)][c];
        fold(g, sum, c);
      }
    }
  } else {
    for (const auto& [g, toucher] : rd.solo_rows[L]) {
      const auto& pb = ranks_[static_cast<std::size_t>(toucher)].private_buf;
      for (int c = 0; c < ncomp_; ++c)
        fold(g, pb[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)], c);
    }
    const auto& srows = rd.shared_rows[L];
    const auto& soffs = rd.shared_offsets[L];
    const auto& stch = rd.shared_touchers[L];
    for (std::size_t s = 0; s < srows.size(); ++s) {
      const gindex_t g = srows[s];
      for (int c = 0; c < ncomp_; ++c) {
        real_t sum = 0;
        for (index_t t = soffs[s]; t < soffs[s + 1]; ++t)
          sum += ranks_[static_cast<std::size_t>(stch[static_cast<std::size_t>(t)])]
                     .private_buf[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)];
        fold(g, sum, c);
      }
    }
  }
  {
    const double s = timer2.seconds();
    busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
    tally(rd, slot_reduce(), s);
  }

  sync(r, k); // scratch/cumulative consistent before row updates
}

void ThreadedLtsSolver::apply_rank_sources(const RankData& rd, level_t k, real_t t_src,
                                           core::SubstepCoeffs cs, real_t* vel) {
  // Post-correction equivalent of the serial solver's "F += src_scratch":
  // the updates are linear in F, so folding the source term in afterwards
  // gives the same result up to a last-ulp reassociation. S is the serial
  // src_scratch_ entry: -Minv f(t) so that v -= kick * F realizes
  // v += kick * Minv f.
  for (const auto& s : rd.sources[static_cast<std::size_t>(k - 1)]) {
    const real_t val = s.amplitude * s.wavelet(t_src);
    const real_t im = inv_mass_[static_cast<std::size_t>(s.node)];
    for (int c = 0; c < ncomp_; ++c) {
      const std::size_t i = static_cast<std::size_t>(s.node) * static_cast<std::size_t>(ncomp_) +
                            static_cast<std::size_t>(c);
      const real_t S = -im * val * s.direction[static_cast<std::size_t>(c)];
      const real_t dv = -cs.kick * S;
      vel[i] += dv;
      u_[i] += cs.drift * dv;
    }
  }
}

void ThreadedLtsSolver::sample_receivers(const RankData& rd, real_t t) {
  for (std::size_t idx : rd.receivers) {
    auto& tr = traces_[idx];
    tr.times.push_back(t);
    tr.values.push_back(u_[static_cast<std::size_t>(tr.node) * static_cast<std::size_t>(ncomp_) +
                           static_cast<std::size_t>(tr.component)]);
  }
}

void ThreadedLtsSolver::run_level(rank_t r, level_t k, real_t t0) {
  const level_t nl = levels_->num_levels;
  const real_t delta = dt_ / static_cast<real_t>(level_rate(k));
  auto& rd = ranks_[static_cast<std::size_t>(r)];
  auto& vt = vt_[static_cast<std::size_t>(k - 2)];
  const bool in = participates(r, k);
  const bool has_sources = in && !rd.sources[static_cast<std::size_t>(k - 1)].empty();

  for (int m = 0; m < 2; ++m) {
    const bool first = (m == 0);
    if (k == nl) {
      // The one integrator-dependent update: the deepest level's kick/drift
      // pair (baseline {first ? delta/2 : delta, delta} for Newmark).
      const core::SubstepCoeffs cs = integ_.coeffs(k, nl, first, delta);
      eval_phase(r, k);
      if (in) {
        const WallTimer timer;
        for (gindex_t g : rd.update_rows[static_cast<std::size_t>(k - 1)])
          for (int c = 0; c < ncomp_; ++c) {
            const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
            const real_t F = cumulative_[i] + scratch_[i];
            if (first)
              vt[i] = -cs.kick * F;
            else
              vt[i] -= cs.kick * F;
            u_[i] += cs.drift * vt[i];
          }
        // Sources are sampled frozen at the cycle start (the serial scheme's
        // midpoint rule; see LtsNewmarkSolver::collapsed_update).
        double t_src = 0;
        if (has_sources) {
          const WallTimer src_timer;
          apply_rank_sources(rd, k, t0, cs, vt.data());
          t_src = src_timer.seconds();
          tally(rd, slot_sources(), t_src);
        }
        const double s = timer.seconds();
        busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
        tally(rd, slot_update(), s - t_src);
      }
      // m == 0: updates visible before the next eval gathers u. m == 1: the
      // caller's post-child barrier publishes instead.
      if (first) sync(r, k);
      continue;
    }

    eval_phase(r, k);
    if (in) {
      const WallTimer timer;
      auto& save = usave_[static_cast<std::size_t>(k - 1)];
      for (gindex_t g : rd.recon_rows[static_cast<std::size_t>(k - 1)])
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          save[i] = u_[i];
        }
      const double s = timer.seconds();
      busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
      tally(rd, slot_update(), s);
    }
    sync(r, k); // saves done before the child mutates u

    run_level(r, k + 1, t0);
    sync(r, k); // child updates visible before reconstruction reads u

    if (in) {
      const WallTimer timer2;
      const auto& save = usave_[static_cast<std::size_t>(k - 1)];
      for (gindex_t g : rd.recon_rows[static_cast<std::size_t>(k - 1)])
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          if (first)
            vt[i] = (u_[i] - save[i]) / delta;
          else
            vt[i] += 2.0 * (u_[i] - save[i]) / delta;
          u_[i] = save[i] + delta * vt[i];
        }
      for (gindex_t g : rd.update_rows[static_cast<std::size_t>(k - 1)])
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          const real_t F = cumulative_[i];
          if (first)
            vt[i] = -0.5 * delta * F;
          else
            vt[i] -= delta * F;
          u_[i] += delta * vt[i];
        }
      double t_src = 0;
      if (has_sources) {
        const WallTimer src_timer;
        // Non-deepest collapsed updates always use the baseline coefficients,
        // for every integrator.
        apply_rank_sources(rd, k, t0, {first ? real_t(0.5) * delta : delta, delta}, vt.data());
        t_src = src_timer.seconds();
        tally(rd, slot_sources(), t_src);
      }
      const double s = timer2.seconds();
      busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
      tally(rd, slot_update(), s - t_src);
    }
    if (first) sync(r, k); // level-k updates visible before the next eval
  }
}

void ThreadedLtsSolver::thread_main(rank_t r, int cycles) {
  const level_t nl = levels_->num_levels;
  auto& rd = ranks_[static_cast<std::size_t>(r)];
  const bool in = participates(r, 1);
  const bool has_sources = in && nl >= 1 && !rd.sources[0].empty();

  for (int cyc = 0; cyc < cycles; ++cyc) {
    // Cycle start time from the integer cycle counter: identical however the
    // caller splits cycles over run_cycles calls. (The offset is nonzero only
    // after a checkpoint restore that changed dt — see adopt_raw_state.)
    const real_t t0 = time_offset_ + static_cast<real_t>(cycles_done_ + cyc) * dt_;
    if (nl == 1) {
      eval_phase(r, 1);
      if (in) {
        const WallTimer timer;
        for (gindex_t g : rd.update_rows[0])
          for (int c = 0; c < ncomp_; ++c) {
            const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
            v_[i] -= dt_ * scratch_[i];
            u_[i] += dt_ * v_[i];
          }
        // Single level: plain Newmark samples the source at the step start.
        double t_src = 0, t_recv = 0;
        if (has_sources) {
          const WallTimer src_timer;
          apply_rank_sources(rd, 1, t0, core::SubstepCoeffs{dt_, dt_}, v_.get());
          t_src = src_timer.seconds();
          tally(rd, slot_sources(), t_src);
        }
        if (!rd.receivers.empty()) {
          const WallTimer recv_timer;
          sample_receivers(rd, time_offset_ + static_cast<real_t>(cycles_done_ + cyc + 1) * dt_);
          t_recv = recv_timer.seconds();
          tally(rd, slot_receivers(), t_recv);
        }
        maybe_inject_fault(rd, r, cycles_done_ + cyc);
        const double s = timer.seconds();
        busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
        tally(rd, slot_update(), s - t_src - t_recv);
      }
      pool_->beat();
      sync(r, 1);
      continue;
    }

    eval_phase(r, 1);
    if (in) {
      const WallTimer timer;
      auto& save = usave_[0];
      for (gindex_t g : rd.recon_rows[0])
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          save[i] = u_[i];
        }
      const double s = timer.seconds();
      busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
      tally(rd, slot_update(), s);
    }
    sync(r, 1); // saves done before the child mutates u

    run_level(r, 2, t0);
    sync(r, 1); // child updates visible before reconstruction reads u

    if (in) {
      const WallTimer timer2;
      const auto& save = usave_[0];
      for (gindex_t g : rd.recon_rows[0])
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          v_[i] += 2.0 * (u_[i] - save[i]) / dt_;
          u_[i] = save[i] + dt_ * v_[i];
        }
      for (gindex_t g : rd.update_rows[0])
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i = static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          v_[i] -= dt_ * cumulative_[i];
          u_[i] += dt_ * v_[i];
        }
      // Level-1 rows take the cycle-frozen source exactly as the serial
      // step() applies it to S(1) after the fine recursion.
      double t_src = 0, t_recv = 0;
      if (has_sources) {
        const WallTimer src_timer;
        apply_rank_sources(rd, 1, t0, core::SubstepCoeffs{dt_, dt_}, v_.get());
        t_src = src_timer.seconds();
        tally(rd, slot_sources(), t_src);
      }
      // Every row this rank owns is final for the cycle (recon ∪ update
      // covers them all) and only this rank ever writes those rows, so
      // sampling here is race-free.
      if (!rd.receivers.empty()) {
        const WallTimer recv_timer;
        sample_receivers(rd, time_offset_ + static_cast<real_t>(cycles_done_ + cyc + 1) * dt_);
        t_recv = recv_timer.seconds();
        tally(rd, slot_receivers(), t_recv);
      }
      maybe_inject_fault(rd, r, cycles_done_ + cyc);
      const double s = timer2.seconds();
      busy_[static_cast<std::size_t>(r)].fetch_add(s, std::memory_order_relaxed);
      tally(rd, slot_update(), s - t_src - t_recv);
    }
    pool_->beat();
    sync(r, 1); // cycle boundary: all updates visible for the next cycle
  }
}

void ThreadedLtsSolver::maybe_inject_fault(const RankData& rd, rank_t r, std::int64_t cycle) {
  using Kind = resilience::FaultPlan::Kind;
  if (fault_.kind != Kind::Nan && fault_.kind != Kind::Stall) return;
  if (!fault_.armed() || cycle != fault_.cycle) return;
  if (fault_fired_.load(std::memory_order_relaxed)) return;
  if (r != static_cast<rank_t>(fault_.rank % static_cast<int>(nranks_))) return;

  if (fault_.kind == Kind::Stall) {
    fault_fired_.store(true, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(fault_.stall_ms));
    return;
  }

  // Nan: poke one row this rank owns. All of rd's update/recon rows are final
  // for the cycle here and only this rank ever writes them, so the corruption
  // is race-free and deterministic (seeded index over the rank's row lists).
  std::size_t nrows = 0;
  for (const auto& v : rd.update_rows) nrows += v.size();
  for (const auto& v : rd.recon_rows) nrows += v.size();
  if (nrows == 0) return; // the addressed rank owns nothing to corrupt
  std::size_t pick = resilience::fault_pick(fault_.seed, nrows);
  gindex_t g = -1;
  for (const auto& v : rd.update_rows) {
    if (g < 0 && pick < v.size()) g = v[pick];
    if (g < 0) pick -= v.size();
  }
  for (const auto& v : rd.recon_rows) {
    if (g < 0 && pick < v.size()) g = v[pick];
    if (g < 0) pick -= v.size();
  }
  LTS_CHECK(g >= 0);
  fault_fired_.store(true, std::memory_order_relaxed);
  for (int c = 0; c < ncomp_; ++c)
    u_[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) +
       static_cast<std::size_t>(c)] = std::numeric_limits<real_t>::quiet_NaN();
}

double ThreadedLtsSolver::run_cycles(int cycles) {
  LTS_CHECK(cycles >= 0);
  if (cycles == 0) return 0.0;
  const WallTimer total;
  const auto parallel = [&](int n) {
    pool_->run([this, n](int worker) { thread_main(static_cast<rank_t>(worker), n); },
               cfg_.watchdog_seconds);
    cycles_done_ += n;
  };
  // An armed throw-fault fires here, on the driving thread, at the addressed
  // cycle boundary: a worker that threw mid-cycle would abandon its barriers
  // and deadlock its peers, so the cooperative boundary is the only safe
  // throw point (see resilience/fault.hpp).
  if (fault_.kind == resilience::FaultPlan::Kind::Throw && fault_.armed() &&
      !fault_fired_.load(std::memory_order_relaxed) && fault_.cycle >= cycles_done_ &&
      fault_.cycle < cycles_done_ + cycles) {
    const auto before = static_cast<int>(fault_.cycle - cycles_done_);
    if (before > 0) parallel(before);
    fault_fired_.store(true, std::memory_order_relaxed);
    LTS_RAISE(resilience::Error,
              "injected failure (fault.kind=throw) at cycle " << cycles_done_);
  }
  parallel(cycles);
  return total.seconds();
}

} // namespace ltswave::runtime
