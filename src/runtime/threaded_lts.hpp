#pragma once

/// \file threaded_lts.hpp
/// Rank-parallel LTS-Newmark execution on shared memory: one persistent pool
/// worker per partition, mirroring the paper's MPI structure (SPECFEM-style
/// partial assembly + interface exchange).
///
/// Each rank owns the elements its partition assigns; stiffness applications
/// accumulate into rank-private buffers, and a reduction phase (the stand-in
/// for MPI point-to-point exchange) combines interface contributions. Every
/// global row is updated by exactly one owner rank.
///
/// Synchronization is governed by a SchedulerMode (see runtime/scheduler.hpp):
/// the legacy barrier-all mode makes every rank arrive at every substep
/// barrier, reproducing the load-imbalance behaviour of Fig. 1 with *real*
/// wall-clock; the level-aware modes synchronize each level-k substep only
/// over the ranks participating at level k or finer (the monotone closure —
/// fine substeps nest inside coarse phases, so finer ranks must join coarser
/// barriers but never vice versa). Level-aware+steal additionally splits each
/// rank's per-level element list into chunks that idle participants steal,
/// absorbing residual intra-level imbalance the partitioner leaves behind.
///
/// Busy/stall/steal counters accumulate across run_cycles calls (the pool and
/// all solver state persist between calls) until reset_counters().

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>

#include "core/lts_newmark.hpp"
#include "partition/partition.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"

namespace ltswave::runtime {

class ThreadedLtsSolver {
public:
  ThreadedLtsSolver(const sem::WaveOperator& op, const core::LevelAssignment& levels,
                    const core::LtsStructure& structure, const partition::Partition& part,
                    SchedulerConfig cfg = {});

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);

  /// Runs `cycles` LTS cycles on the persistent worker team; returns wall
  /// seconds. State (u, v, time, counters) carries over between calls.
  double run_cycles(int cycles);

  [[nodiscard]] const std::vector<real_t>& u() const noexcept { return u_; }
  [[nodiscard]] const std::vector<real_t>& v_half() const noexcept { return v_; }
  [[nodiscard]] real_t time() const noexcept { return time_; }
  [[nodiscard]] rank_t num_ranks() const noexcept { return nranks_; }
  [[nodiscard]] SchedulerMode mode() const noexcept { return cfg_.mode; }

  /// Per-rank compute seconds, barrier-wait seconds, and stolen chunk counts,
  /// accumulated since construction or the last reset_counters().
  [[nodiscard]] const std::vector<double>& busy_seconds() const noexcept { return busy_; }
  [[nodiscard]] const std::vector<double>& stall_seconds() const noexcept { return stall_; }
  [[nodiscard]] const std::vector<std::int64_t>& steal_counts() const noexcept { return steals_; }
  void reset_counters();

  /// Number of ranks taking part in level-k substep barriers under the
  /// current mode (== num_ranks() for barrier-all and for level 1).
  [[nodiscard]] rank_t level_participants(level_t k) const;

private:
  /// A contiguous slice [begin, end) of a rank's per-level element list, with
  /// the global rows it touches (needed for zero-on-touch when stolen).
  struct Chunk {
    index_t begin = 0;
    index_t end = 0;
    std::vector<gindex_t> rows;
  };

  struct RankData {
    // Elements this rank evaluates per level (its share of E(k)).
    std::vector<std::vector<index_t>> eval_elems; // [level]
    // Rows this rank's private buffer touches per level (zeroed before apply).
    std::vector<std::vector<gindex_t>> private_rows; // [level]
    // Reduction work per level: rows this rank owns within rows(E(k)).
    // solo rows have exactly one touching rank; shared rows carry a CSR list.
    std::vector<std::vector<std::pair<gindex_t, rank_t>>> solo_rows; // [level] (row, toucher)
    std::vector<std::vector<gindex_t>> shared_rows;                  // [level]
    std::vector<std::vector<index_t>> shared_offsets;                // [level] CSR into touchers
    std::vector<std::vector<rank_t>> shared_touchers;                // [level]
    // All owned rows per level (solo ∪ shared) — the dynamic reduction of the
    // stealing scheduler scans participant buffers row by row.
    std::vector<std::vector<gindex_t>> owned_rows; // [level]
    // Row-update sets owned by this rank.
    std::vector<std::vector<gindex_t>> update_rows; // S(k) ∩ mine
    std::vector<std::vector<gindex_t>> recon_rows;  // R(k+1) ∩ mine
    std::vector<real_t> private_buf;                // ndof accumulation buffer
    std::unique_ptr<sem::KernelWorkspace> workspace;
    // Work-stealing state (LevelAwareSteal only).
    std::vector<std::vector<Chunk>> chunks;                  // [level]
    std::unique_ptr<std::atomic<index_t>[]> chunk_cursor;    // [level]
    std::vector<std::uint64_t> touch_epoch;                  // per global node
    std::uint64_t epoch = 0; ///< bumped at each eval participation
  };

  void build_rank_data();
  void build_participation();
  void build_chunks();
  [[nodiscard]] bool participates(rank_t r, level_t k) const {
    return part_mask_[static_cast<std::size_t>(k - 1) * static_cast<std::size_t>(nranks_) +
                      static_cast<std::size_t>(r)] != 0;
  }
  void thread_main(rank_t r, int cycles);
  void eval_phase(rank_t r, level_t k);
  void run_chunk(RankData& self, const RankData& owner, level_t k, const Chunk& chunk);
  void run_level(rank_t r, level_t k);
  void sync(rank_t r, level_t k);

  const sem::WaveOperator* op_;
  const core::LevelAssignment* levels_;
  const core::LtsStructure* structure_;
  const partition::Partition* part_;
  SchedulerConfig cfg_;
  rank_t nranks_;
  int ncomp_;
  real_t dt_;
  real_t time_ = 0;
  std::size_t ndof_ = 0;

  std::vector<real_t> inv_mass_; // per node (components share it)
  std::vector<real_t> u_, v_;
  std::vector<real_t> scratch_;
  std::vector<real_t> cumulative_;
  std::vector<std::vector<real_t>> forces_;
  std::vector<std::vector<real_t>> vt_;
  std::vector<std::vector<real_t>> usave_;

  std::vector<RankData> ranks_;
  // part_mask_[(k-1)*nranks + r]: rank r takes part in level-k barriers.
  std::vector<std::uint8_t> part_mask_;
  // group_[k-1]: ascending rank ids of level-k participants (steal/reduction
  // scan order; fixed so the non-stealing modes stay bitwise deterministic).
  std::vector<std::vector<rank_t>> group_;
  std::vector<std::unique_ptr<std::barrier<>>> level_barriers_; // [level]
  std::unique_ptr<ThreadPool> pool_;
  std::vector<double> busy_;
  std::vector<double> stall_;
  std::vector<std::int64_t> steals_;
};

} // namespace ltswave::runtime
