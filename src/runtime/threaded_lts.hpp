#pragma once

/// \file threaded_lts.hpp
/// Rank-parallel LTS-Newmark execution on shared memory: one thread per
/// partition, mirroring the paper's MPI structure (SPECFEM-style partial
/// assembly + interface exchange, synchronizing at every LTS substep).
///
/// Each rank owns the elements its partition assigns; stiffness applications
/// accumulate into rank-private buffers, and a reduction phase (the stand-in
/// for MPI point-to-point exchange) combines interface contributions. Every
/// global row is updated by exactly one owner rank. Barriers delimit the same
/// substep boundaries an MPI run would synchronize at, so per-thread busy and
/// stall times measured here reproduce the load-imbalance behaviour of Fig. 1
/// with *real* wall-clock on up to hardware-core many ranks.

#include <barrier>
#include <thread>

#include "core/lts_newmark.hpp"
#include "partition/partition.hpp"

namespace ltswave::runtime {

class ThreadedLtsSolver {
public:
  ThreadedLtsSolver(const sem::WaveOperator& op, const core::LevelAssignment& levels,
                    const core::LtsStructure& structure, const partition::Partition& part);

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);

  /// Runs `cycles` LTS cycles on num_parts threads; returns wall seconds.
  double run_cycles(int cycles);

  [[nodiscard]] const std::vector<real_t>& u() const noexcept { return u_; }
  [[nodiscard]] const std::vector<real_t>& v_half() const noexcept { return v_; }
  [[nodiscard]] real_t time() const noexcept { return time_; }
  [[nodiscard]] rank_t num_ranks() const noexcept { return nranks_; }

  /// Per-rank compute seconds and barrier-wait seconds of the last run.
  [[nodiscard]] const std::vector<double>& busy_seconds() const noexcept { return busy_; }
  [[nodiscard]] const std::vector<double>& stall_seconds() const noexcept { return stall_; }

private:
  struct RankData {
    // Elements this rank evaluates per level (its share of E(k)).
    std::vector<std::vector<index_t>> eval_elems; // [level]
    // Rows this rank's private buffer touches per level (zeroed before apply).
    std::vector<std::vector<gindex_t>> private_rows; // [level]
    // Reduction work per level: rows this rank owns within rows(E(k)).
    // solo rows have exactly one touching rank; shared rows carry a CSR list.
    std::vector<std::vector<std::pair<gindex_t, rank_t>>> solo_rows; // [level] (row, toucher)
    std::vector<std::vector<gindex_t>> shared_rows;                  // [level]
    std::vector<std::vector<index_t>> shared_offsets;                // [level] CSR into touchers
    std::vector<std::vector<rank_t>> shared_touchers;                // [level]
    // Row-update sets owned by this rank.
    std::vector<std::vector<gindex_t>> update_rows; // S(k) ∩ mine
    std::vector<std::vector<gindex_t>> recon_rows;  // R(k+1) ∩ mine
    std::vector<real_t> private_buf;                // ndof accumulation buffer
    std::unique_ptr<sem::KernelWorkspace> workspace;
  };

  void build_rank_data();
  void thread_main(rank_t r, int cycles);
  void eval_phase(rank_t r, level_t k);
  void run_level(rank_t r, level_t k);
  void sync(rank_t r);

  const sem::WaveOperator* op_;
  const core::LevelAssignment* levels_;
  const core::LtsStructure* structure_;
  const partition::Partition* part_;
  rank_t nranks_;
  int ncomp_;
  real_t dt_;
  real_t time_ = 0;
  std::size_t ndof_ = 0;

  std::vector<real_t> inv_mass_;
  std::vector<real_t> u_, v_;
  std::vector<real_t> scratch_;
  std::vector<real_t> cumulative_;
  std::vector<std::vector<real_t>> forces_;
  std::vector<std::vector<real_t>> vt_;
  std::vector<std::vector<real_t>> usave_;

  std::vector<RankData> ranks_;
  std::unique_ptr<std::barrier<>> barrier_;
  std::vector<double> busy_;
  std::vector<double> stall_;
};

} // namespace ltswave::runtime
