#pragma once

/// \file threaded_lts.hpp
/// Rank-parallel LTS-Newmark execution on shared memory: one persistent pool
/// worker per partition, mirroring the paper's MPI structure (SPECFEM-style
/// partial assembly + interface exchange).
///
/// Each rank owns the elements its partition assigns; stiffness applications
/// accumulate into rank-private buffers, and a reduction phase (the stand-in
/// for MPI point-to-point exchange) combines interface contributions. Every
/// global row is updated by exactly one owner rank.
///
/// Stiffness evaluation runs on the element-block batched path: the solver
/// builds one sem::BatchPlan whose groups are ordered (rank, level) — rank
/// r's share of E(k), level-homogeneous elements first so most blocks take
/// the mask-free fast gather — and every eval phase iterates whole blocks.
/// The per-rank block slabs (and workspaces, accumulation buffers and chunk
/// buffers) are first-touch initialized by their owning pool thread, so on
/// NUMA machines each rank's hot data lands on its own memory node. The
/// *shared* global u/v/scratch vectors get the same treatment: they are
/// allocated untouched (raw arrays, not value-initialized std::vector) and
/// each pool worker zeroes the rows it owns (row_owner_), so every page of
/// the shared state is resident on the memory node of the rank that updates
/// — and most often reads — it.
///
/// Synchronization is governed by a SchedulerMode (see runtime/scheduler.hpp):
/// the legacy barrier-all mode makes every rank arrive at every substep
/// barrier, reproducing the load-imbalance behaviour of Fig. 1 with *real*
/// wall-clock; the level-aware modes synchronize each level-k substep only
/// over the ranks participating at level k or finer (the monotone closure —
/// fine substeps nest inside coarse phases, so finer ranks must join coarser
/// barriers but never vice versa). Level-aware+steal additionally splits each
/// rank's per-level block list into chunks — always whole blocks, so stealing
/// moves block-aligned work — that idle participants steal, absorbing
/// residual intra-level imbalance the partitioner leaves behind. Stolen
/// chunks accumulate into per-chunk buffers that the owner reduces in a
/// fixed (rank, chunk) order, so every mode — stealing included — is bitwise
/// reproducible run to run.
///
/// Scenario support mirrors the serial solvers: point sources are injected by
/// the rank owning the source node's row, sampled frozen at the cycle start
/// (the serial scheme's midpoint rule — see LtsNewmarkSolver::collapsed_update
/// for why a cycle-constant source preserves second-order accuracy through the
/// velocity reconstruction); receivers are sampled at every cycle boundary by
/// their owning rank into per-receiver trace buffers the facade drains.
///
/// Busy/stall/steal counters accumulate across run_cycles calls (the pool and
/// all solver state persist between calls) until reset_counters(). All
/// counters (and the per-phase accumulators behind fill_phases) are
/// std::atomic with relaxed memory order: each slot has a single writer (its
/// owning rank's worker, at phase boundaries — never per element), readers
/// only ever aggregate them, and no other data is published through them, so
/// relaxed is sufficient and reset_counters()/snapshot reads are data-race
/// free even while a run is in flight. A mid-run reset can swallow an
/// in-flight increment — the counters are monitoring data, not physics; the
/// field state and the deterministic (rank, chunk)-ordered steal reduction
/// are untouched by any of this, so bitwise reproducibility is unaffected.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <span>

#include "core/lts_newmark.hpp"
#include "partition/partition.hpp"
#include "perf/run_report.hpp"
#include "resilience/fault.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "sem/sources.hpp"

namespace ltswave::runtime {

class ThreadedLtsSolver {
public:
  /// One receiver's accumulated samples; owned by the rank that owns the
  /// receiver node's row, so sampling is contention-free.
  struct Trace {
    gindex_t node = 0;
    int component = 0;
    std::vector<real_t> times;
    std::vector<real_t> values;
  };

  /// `integ` selects the deepest-level substep rule (core/integrator.hpp);
  /// the default reproduces the historical Newmark scheme bit-for-bit.
  ThreadedLtsSolver(const sem::WaveOperator& op, const core::LevelAssignment& levels,
                    const core::LtsStructure& structure, const partition::Partition& part,
                    SchedulerConfig cfg = {}, core::Integrator integ = core::Integrator::newmark());

  [[nodiscard]] const core::Integrator& integrator() const noexcept { return integ_; }

  /// Joins any workers still draining an abandoned (watchdog-timed-out)
  /// generation before the state buffers they touch are destroyed.
  ~ThreadedLtsSolver();

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);

  /// Checkpoint restore: overwrites u and the staggered v^{n-1/2} verbatim
  /// (no initialization apply — the checkpoint already captured a mid-run
  /// staggered pair) and resumes the integer cycle counter at `cycles_done`
  /// with `time` preserved exactly via an internal offset (so a restore under
  /// a halved dt keeps absolute time consistent). The frozen-force/cumulative
  /// accumulators are zeroed — the first cycle's eval phases rebuild them from
  /// u — unless import_accumulators() restores them afterwards for a bitwise
  /// same-scheme resume. Sources/receivers are untouched.
  void adopt_raw_state(std::span<const real_t> u, std::span<const real_t> v_half, real_t time,
                       std::int64_t cycles_done);

  /// Restores the frozen per-level forces and the cumulative sum captured by
  /// a checkpoint of the *same* LTS level structure; silently keeps the
  /// zeroed accumulators (recompute-from-u semantics) when the shapes do not
  /// match — a cross-scheme restore, where the captured accumulators are
  /// meaningless here.
  void import_accumulators(const std::vector<std::vector<real_t>>& forces,
                           std::span<const real_t> cumulative);

  [[nodiscard]] const std::vector<std::vector<real_t>>& frozen_forces() const noexcept {
    return forces_;
  }
  [[nodiscard]] const std::vector<real_t>& cumulative() const noexcept { return cumulative_; }
  [[nodiscard]] real_t dt() const noexcept { return dt_; }

  /// Arms the deterministic fault-injection plan (see resilience/fault.hpp).
  /// One-shot per solver instance: nan/stall fire inside the addressed rank's
  /// cycle-final update phase, throw fires on the driving thread at the cycle
  /// boundary in run_cycles. Call before run_cycles, never mid-run.
  void set_fault(const resilience::FaultPlan& plan) { fault_ = plan; }
  [[nodiscard]] bool fault_fired() const noexcept {
    return fault_fired_.load(std::memory_order_relaxed);
  }

  /// Registers a point source; the rank owning the source node's row injects
  /// it during that node's level-local updates. Must not be called while
  /// run_cycles is executing. Call before set_state so the staggered
  /// initial velocity sees f(0), exactly as the serial solvers do.
  void add_source(const sem::PointSource& src);

  /// Registers a receiver sampled at every cycle boundary by the rank owning
  /// the node's row; returns the trace index. Must not be called mid-run.
  std::size_t add_receiver(gindex_t node, int component);

  /// Accumulated receiver traces (one per add_receiver, in call order). The
  /// facade drains these after run_cycles; clearing is the caller's business.
  [[nodiscard]] std::vector<Trace>& traces() noexcept { return traces_; }
  [[nodiscard]] const std::vector<Trace>& traces() const noexcept { return traces_; }

  /// Copies the dynamical state (u, v, frozen forces, cycle count), the
  /// sources and the receivers — including already-accumulated trace samples —
  /// from another solver over the *same* operator/levels/structure. This is
  /// the state hand-off of feedback repartitioning: build a new solver on the
  /// refined partition, adopt, and continue mid-run with no restart.
  /// Performance counters start at zero (the feedback pass consumed them).
  void adopt_state_from(const ThreadedLtsSolver& prev);

  /// Runs `cycles` LTS cycles on the persistent worker team; returns wall
  /// seconds. State (u, v, time, counters) carries over between calls.
  double run_cycles(int cycles);

  /// Read-only views of the shared global state. Spans, not vectors: the
  /// backing arrays are first-touch-placed raw allocations (see the file
  /// comment), stable for the solver's lifetime.
  [[nodiscard]] std::span<const real_t> u() const noexcept { return {u_.get(), ndof_}; }
  [[nodiscard]] std::span<const real_t> v_half() const noexcept { return {v_.get(), ndof_}; }
  /// Completed LTS cycles since construction / the last set_state. Time and
  /// work counters derive from this integer — no floating-point drift.
  [[nodiscard]] std::int64_t cycles_done() const noexcept { return cycles_done_; }
  /// time_offset_ is 0 except after an adopt_raw_state whose restored time is
  /// not cycles * dt (e.g. a dt change across a checkpoint restore).
  [[nodiscard]] real_t time() const noexcept {
    return time_offset_ + static_cast<real_t>(cycles_done_) * dt_;
  }
  /// Element applies consumed so far: cycles_done() * applies_per_cycle.
  [[nodiscard]] std::int64_t element_applies() const noexcept;
  /// Batched kernel calls consumed so far: cycles_done() * blocks per cycle.
  /// Stealing moves whole blocks between ranks but never changes the total,
  /// so this is exact in every scheduler mode.
  [[nodiscard]] std::int64_t blocks_applied() const noexcept {
    return cycles_done_ * blocks_per_cycle_;
  }
  [[nodiscard]] rank_t num_ranks() const noexcept { return nranks_; }
  [[nodiscard]] SchedulerMode mode() const noexcept { return cfg_.mode; }
  /// The (rank, level)-ordered batched execution plan driving the eval phases.
  [[nodiscard]] const sem::BatchPlan& plan() const noexcept { return *plan_; }
  /// Plan block range of rank r's share of E(k).
  [[nodiscard]] sem::BatchPlan::BlockRange rank_level_blocks(rank_t r, level_t k) const {
    return plan_->group_blocks(group_index(r, k));
  }

  /// Per-rank compute seconds, barrier-wait seconds, and stolen chunk counts,
  /// accumulated since construction or the last reset_counters(). Returned by
  /// value as a relaxed-load snapshot of the atomic slots — take ONE snapshot
  /// and iterate that (two calls return two different temporaries, so
  /// `f(x.busy_seconds().begin(), x.busy_seconds().end())` is a dangling-
  /// iterator bug).
  [[nodiscard]] std::vector<double> busy_seconds() const;
  [[nodiscard]] std::vector<double> stall_seconds() const;
  [[nodiscard]] std::vector<std::int64_t> steal_counts() const;
  /// Zeroes every counter and phase accumulator (relaxed stores). Safe to
  /// call concurrently with run_cycles: slots are atomic, so this is
  /// data-race free; increments in flight at the instant of the reset may
  /// land before or after it (monitoring data only — see the file comment).
  void reset_counters();

  /// Appends the per-phase accumulators, summed across ranks, onto `report`:
  /// "eval.L<k>" (per-level block kernel time), "reduce" (ownership
  /// reduction, the MPI-exchange stand-in), "update" (row updates +
  /// reconstructions), "barrier" (level-barrier wait == stall_seconds), and
  /// "sources"/"receivers" when any are registered. Call between run_cycles
  /// invocations only (the accumulators are written by the pool workers).
  void fill_phases(perf::RunReport& report) const;

  /// Complete structured snapshot of this solver: executor spelling
  /// ("threaded/<mode>"), work counters, per-rank busy/stall/steal vectors,
  /// phases (fill_phases) and the plan's roofline record. The executor
  /// adapter and bench/threaded_scaling both emit through this one path.
  [[nodiscard]] perf::RunReport run_report() const;

  /// Number of ranks taking part in level-k substep barriers under the
  /// current mode (== num_ranks() for barrier-all and for level 1).
  [[nodiscard]] rank_t level_participants(level_t k) const;

private:
  /// A contiguous plan-block range [first_block, last_block) of a rank's
  /// level group — steal chunks always move whole blocks — with the global
  /// rows it touches and a per-chunk accumulation buffer (rows.size() *
  /// ncomp). Whichever thread executes the chunk writes `acc`; the row owners
  /// reduce the chunks in a fixed order, which makes the stealing mode's
  /// floating-point association independent of who stole what.
  struct Chunk {
    index_t first_block = 0;
    index_t last_block = 0;
    std::vector<gindex_t> rows;
    std::vector<real_t> acc;
  };

  struct RankData {
    // Elements this rank evaluates per level (its share of E(k)).
    std::vector<std::vector<index_t>> eval_elems; // [level]
    // Rows this rank's private buffer touches per level (zeroed before apply).
    std::vector<std::vector<gindex_t>> private_rows; // [level]
    // Reduction work per level: rows this rank owns within rows(E(k)).
    // solo rows have exactly one touching rank; shared rows carry a CSR list.
    std::vector<std::vector<std::pair<gindex_t, rank_t>>> solo_rows; // [level] (row, toucher)
    std::vector<std::vector<gindex_t>> shared_rows;                  // [level]
    std::vector<std::vector<index_t>> shared_offsets;                // [level] CSR into touchers
    std::vector<std::vector<rank_t>> shared_touchers;                // [level]
    // All owned rows per level (solo ∪ shared), ascending — the steal-mode
    // reduction walks these against the static chunk-contribution lists.
    std::vector<std::vector<gindex_t>> owned_rows; // [level]
    // Row-update sets owned by this rank.
    std::vector<std::vector<gindex_t>> update_rows; // S(k) ∩ mine
    std::vector<std::vector<gindex_t>> recon_rows;  // R(k+1) ∩ mine
    std::vector<real_t> private_buf;                // ndof accumulation buffer
    std::unique_ptr<sem::KernelWorkspace> workspace;
    // Point sources injected by this rank, bucketed by the source node's
    // updater level rho (mirrors LtsNewmarkSolver::sources_by_level_).
    std::vector<std::vector<sem::PointSource>> sources; // [level]
    // Indices into traces_ of the receivers this rank samples.
    std::vector<std::size_t> receivers;
    // Work-stealing state (LevelAwareSteal only).
    std::vector<std::vector<Chunk>> chunks;               // [level]
    std::unique_ptr<std::atomic<index_t>[]> chunk_cursor; // [level]
    // Static reduction map: for owned_rows[L][j], the chunk-contribution
    // pointers are red_sources[L][red_offsets[L][j] .. red_offsets[L][j+1]],
    // each pointing at a chunk's acc entry for this row (ncomp stride).
    // Ordered by (rank, chunk) ascending — the fixed association order.
    std::vector<std::vector<index_t>> red_offsets;      // [level]
    std::vector<std::vector<const real_t*>> red_sources; // [level]
    // Per-phase perf accumulators (run_report): slots 0..nl-1 are the
    // per-level eval kernel time, then reduce/update/sources/receivers/
    // barrier (slot_* helpers). Written only by this rank's worker at phase
    // boundaries, reusing the WallTimer reads already taken for busy_/stall_.
    // Atomic + relaxed so reset_counters() and report snapshots never race
    // the owning worker (single writer per slot; aggregation-only readers).
    std::vector<std::atomic<double>> phase_seconds;
    std::vector<std::atomic<std::int64_t>> phase_count;
  };

  void build_rank_data();
  void build_participation();
  void build_chunks();
  void build_steal_reduction();
  void first_touch_rank_buffers();
  [[nodiscard]] std::size_t group_index(rank_t r, level_t k) const noexcept {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(levels_->num_levels) +
           static_cast<std::size_t>(k - 1);
  }
  [[nodiscard]] bool participates(rank_t r, level_t k) const {
    return part_mask_[static_cast<std::size_t>(k - 1) * static_cast<std::size_t>(nranks_) +
                      static_cast<std::size_t>(r)] != 0;
  }
  // Phase accumulator slot layout (see RankData::phase_seconds).
  [[nodiscard]] std::size_t slot_eval(level_t k) const noexcept {
    return static_cast<std::size_t>(k - 1);
  }
  [[nodiscard]] std::size_t slot_reduce() const noexcept {
    return static_cast<std::size_t>(levels_->num_levels);
  }
  [[nodiscard]] std::size_t slot_update() const noexcept { return slot_reduce() + 1; }
  [[nodiscard]] std::size_t slot_sources() const noexcept { return slot_reduce() + 2; }
  [[nodiscard]] std::size_t slot_receivers() const noexcept { return slot_reduce() + 3; }
  [[nodiscard]] std::size_t slot_barrier() const noexcept { return slot_reduce() + 4; }
  [[nodiscard]] std::size_t num_phase_slots() const noexcept { return slot_reduce() + 5; }
  static void tally(RankData& rd, std::size_t slot, double seconds) noexcept {
    rd.phase_seconds[slot].fetch_add(seconds, std::memory_order_relaxed);
    rd.phase_count[slot].fetch_add(1, std::memory_order_relaxed);
  }
  void thread_main(rank_t r, int cycles);
  /// Fires the armed nan/stall fault when (cycle, r) matches the plan; called
  /// from the addressed rank's cycle-final update phase, where every row the
  /// rank owns is final for the cycle and single-writer (race-free).
  void maybe_inject_fault(const RankData& rd, rank_t r, std::int64_t cycle);
  void eval_phase(rank_t r, level_t k);
  void run_chunk(RankData& self, Chunk& chunk);
  void run_level(rank_t r, level_t k, real_t t0);
  void sync(rank_t r, level_t k);
  /// Folds this rank's level-k sources (sampled at t_src) into an update that
  /// already ran without them: vel (vt or v) and u are post-corrected by the
  /// same linear terms the serial solver folds into F, using the substep's
  /// own kick/drift coefficients (the physical level-1 step passes
  /// {dt, dt} — the leapfrog form v -= dt * F).
  void apply_rank_sources(const RankData& rd, level_t k, real_t t_src, core::SubstepCoeffs cs,
                          real_t* vel);
  void sample_receivers(const RankData& rd, real_t t);

  const sem::WaveOperator* op_;
  const core::LevelAssignment* levels_;
  const core::LtsStructure* structure_;
  const partition::Partition* part_;
  SchedulerConfig cfg_;
  core::Integrator integ_;
  rank_t nranks_;
  int ncomp_;
  real_t dt_;
  std::int64_t cycles_done_ = 0;
  real_t time_offset_ = 0;
  resilience::FaultPlan fault_;
  /// Written by the single addressed rank (nan/stall) or the driver (throw).
  std::atomic<bool> fault_fired_{false};
  std::size_t ndof_ = 0;
  std::int64_t blocks_per_cycle_ = 0;

  /// Batched execution plan, groups ordered (rank, level); slabs are filled
  /// (first-touched) by the owning pool workers, not the constructing thread.
  std::unique_ptr<sem::BatchPlan> plan_;

  std::vector<real_t> inv_mass_; // per node (components share it)
  // Shared global state (ndof_ each): raw arrays allocated untouched so the
  // pool workers' per-owned-row zeroing is the first touch of every page.
  std::unique_ptr<real_t[]> u_, v_;
  std::unique_ptr<real_t[]> scratch_;
  std::vector<real_t> cumulative_;
  std::vector<std::vector<real_t>> forces_;
  std::vector<std::vector<real_t>> vt_;
  std::vector<std::vector<real_t>> usave_;

  std::vector<sem::PointSource> sources_; // master list (adopt/redistribute)
  std::vector<Trace> traces_;

  std::vector<RankData> ranks_;
  std::vector<rank_t> row_owner_; // per global node: min rank touching it
  // part_mask_[(k-1)*nranks + r]: rank r takes part in level-k barriers.
  std::vector<std::uint8_t> part_mask_;
  // group_[k-1]: ascending rank ids of level-k participants (steal/reduction
  // scan order; fixed so every mode stays bitwise deterministic).
  std::vector<std::vector<rank_t>> group_;
  std::vector<std::unique_ptr<std::barrier<>>> level_barriers_; // [level]
  std::unique_ptr<ThreadPool> pool_;
  // Per-rank wall-clock/steal tallies; single writer per slot (the owning
  // rank's worker), relaxed atomics — see the file comment for the contract.
  std::vector<std::atomic<double>> busy_;
  std::vector<std::atomic<double>> stall_;
  std::vector<std::atomic<std::int64_t>> steals_;
};

} // namespace ltswave::runtime
