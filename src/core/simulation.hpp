#pragma once

/// \file simulation.hpp
/// High-level facade tying the whole stack together: mesh -> SEM space ->
/// wave operator -> LTS levels -> solver. This is the entry point example
/// applications use; lower layers stay fully accessible for advanced use.

#include <functional>
#include <memory>
#include <optional>

#include "core/lts_newmark.hpp"
#include "partition/partitioners.hpp"
#include "runtime/scheduler.hpp"
#include "sem/sources.hpp"

namespace ltswave::runtime {
class ThreadedLtsSolver;
}

namespace ltswave::core {

enum class Physics { Acoustic, Elastic };

struct SimulationConfig {
  int order = 4;               ///< SEM polynomial order (paper: 4 -> 125 nodes/elem)
  Physics physics = Physics::Acoustic;
  real_t courant = 0.12;       ///< CFL constant C_cfl of Eq. 7 (relative to min edge)
  bool use_lts = true;         ///< false -> global Newmark at Delta-t_min
  level_t max_levels = 12;
  /// Rank-parallel shared-memory execution: 0 or 1 runs the serial solvers;
  /// > 1 partitions the mesh and runs the threaded LTS executor on that many
  /// ranks under `scheduler` (barrier-all / level-aware / level-aware+steal).
  rank_t num_ranks = 0;
  runtime::SchedulerConfig scheduler{};
  partition::Strategy partitioner = partition::Strategy::ScotchP;
  /// Steal/stall-feedback repartitioning (threaded runs only): when > 0, the
  /// first run() call executes this many warm-up cycles, folds the measured
  /// per-rank busy/stall/steal counters back into the partitioner
  /// (partition::refine_with_feedback), rebuilds the executor on the refined
  /// partition with the state carried over exactly, and continues. 0 = off.
  int feedback_warmup_cycles = 0;
};

class WaveSimulation {
public:
  /// Takes the mesh by value: the facade owns its whole stack (the SEM space
  /// keeps pointers into the mesh, so borrowing a caller temporary would
  /// dangle). Pass std::move(mesh) to avoid the copy.
  explicit WaveSimulation(mesh::HexMesh mesh, SimulationConfig cfg = {});
  ~WaveSimulation();

  [[nodiscard]] const sem::SemSpace& space() const noexcept { return *space_; }
  [[nodiscard]] const sem::WaveOperator& op() const noexcept { return *op_; }
  [[nodiscard]] const LevelAssignment& levels() const noexcept { return levels_; }
  [[nodiscard]] const LtsStructure& structure() const noexcept { return structure_; }
  [[nodiscard]] int ncomp() const noexcept { return op_->ncomp(); }
  [[nodiscard]] real_t dt() const noexcept;
  [[nodiscard]] real_t time() const noexcept;

  void add_source(std::array<real_t, 3> location, real_t peak_frequency,
                  std::array<real_t, 3> direction = {0, 0, 1}, real_t amplitude = 1.0);
  void add_receiver(std::array<real_t, 3> location, int component = 0);

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);

  /// Advances by (at least) `duration` simulated seconds; receivers sample at
  /// every coarse step. Returns the number of coarse steps taken.
  std::int64_t run(real_t duration, const std::function<void(real_t)>& on_step = {});

  [[nodiscard]] const std::vector<real_t>& u() const;
  [[nodiscard]] const std::vector<sem::Receiver>& receivers() const noexcept { return receivers_; }
  [[nodiscard]] std::vector<sem::Receiver>& receivers() noexcept { return receivers_; }

  /// Element applies consumed so far (work counter; the serial-efficiency
  /// experiment compares this against the non-LTS scheme).
  [[nodiscard]] std::int64_t element_applies() const;

  /// Theoretical LTS speedup of this mesh/config (Eq. 9).
  [[nodiscard]] double theoretical_speedup() const { return core::theoretical_speedup(levels_); }

  /// The rank-parallel executor when num_ranks > 1, else nullptr. Exposes
  /// scheduler mode, per-rank busy/stall/steal counters, and per-level
  /// participation to benches and examples.
  [[nodiscard]] const runtime::ThreadedLtsSolver* threaded() const noexcept {
    return threaded_solver_.get();
  }
  [[nodiscard]] runtime::ThreadedLtsSolver* threaded() noexcept { return threaded_solver_.get(); }

  /// The mesh partition driving the threaded executor (empty when serial).
  [[nodiscard]] const partition::Partition& part() const noexcept { return part_; }

  /// Repartitions from the threaded executor's measured busy/stall/steal
  /// counters (partition::refine_with_feedback) and rebuilds the executor on
  /// the refined partition; the dynamical state, sources, and receiver traces
  /// carry over exactly, so a run continues mid-simulation. Requires
  /// num_ranks > 1. run() triggers this automatically after
  /// `feedback_warmup_cycles` when configured; benches call it directly.
  void refine_partition_from_feedback();

  [[nodiscard]] const mesh::HexMesh& mesh() const noexcept { return mesh_; }

private:
  SimulationConfig cfg_;
  mesh::HexMesh mesh_;
  std::unique_ptr<sem::SemSpace> space_;
  std::unique_ptr<sem::WaveOperator> op_;
  LevelAssignment levels_;
  LtsStructure structure_;
  partition::Partition part_;
  std::unique_ptr<LtsNewmarkSolver> lts_solver_;
  std::unique_ptr<NewmarkSolver> newmark_solver_;
  std::unique_ptr<runtime::ThreadedLtsSolver> threaded_solver_;
  std::vector<sem::Receiver> receivers_;
  bool feedback_applied_ = false;

  void run_threaded_cycles(std::int64_t cycles, const std::function<void(real_t)>& on_step);
  void drain_threaded_receivers();
};

} // namespace ltswave::core
