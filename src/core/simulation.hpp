#pragma once

/// \file simulation.hpp
/// High-level facade tying the whole stack together: mesh -> SEM space ->
/// wave operator -> LTS levels -> execution backend. This is the entry point
/// example applications use; lower layers stay fully accessible for advanced
/// use.
///
/// Execution is fully pluggable: the facade holds exactly one core::Executor
/// created by name through ExecutorFactory (see executor.hpp) and contains no
/// per-backend branching. Select a backend explicitly with
/// SimulationConfig::executor ("serial-lts", "newmark", "threaded/<mode>",
/// or any externally registered name), or leave it empty and let the legacy
/// fields (use_lts, num_ranks, scheduler) resolve it — the deprecation shim
/// keeps existing call sites running unchanged and provably identical.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/lts_newmark.hpp"
#include "partition/partitioners.hpp"
#include "resilience/fault.hpp"
#include "runtime/scheduler.hpp"
#include "sem/sources.hpp"

namespace ltswave::runtime {
class ThreadedLtsSolver;
}
namespace ltswave::resilience {
struct Checkpoint;
class HealthGuard;
}

namespace ltswave::core {

class Executor;

enum class Physics { Acoustic, Elastic };

[[nodiscard]] std::string to_string(Physics p);
[[nodiscard]] Physics parse_physics(std::string_view name);

struct SimulationConfig {
  int order = 4;               ///< SEM polynomial order (paper: 4 -> 125 nodes/elem)
  Physics physics = Physics::Acoustic;
  real_t courant = 0.12;       ///< CFL constant C_cfl of Eq. 7 (relative to min edge)
  bool use_lts = true;         ///< legacy shim: false resolves to the "newmark" executor
  level_t max_levels = 12;
  /// Legacy shim for rank-parallel shared-memory execution: > 1 resolves to
  /// the "threaded/<scheduler.mode>" executor on that many ranks. Threaded
  /// executors selected by name also read their rank count from here.
  rank_t num_ranks = 0;
  runtime::SchedulerConfig scheduler{};
  partition::Strategy partitioner = partition::Strategy::ScotchP;
  /// Steal/stall-feedback repartitioning (feedback-capable executors only):
  /// when > 0, the first run() call executes this many warm-up cycles, folds
  /// the measured per-rank busy/stall/steal counters back into the
  /// partitioner (partition::refine_with_feedback), rebuilds the executor on
  /// the refined partition with the state carried over exactly, and
  /// continues. 0 = off.
  int feedback_warmup_cycles = 0;
  /// Execution backend by ExecutorFactory name; empty = resolve from the
  /// legacy fields above (see resolve_executor_name in executor.hpp).
  std::string executor;
  /// Time-integrator name (core/integrator.hpp): "newmark" (default, also
  /// selected by the empty string) or "leapfrog-stab" — the Grote/Michel/
  /// Sauter stabilized leapfrog substep rule on the deepest LTS level.
  /// Orthogonal to `executor`: every LTS backend honors it; the single-level
  /// "newmark" backend rejects anything but the default.
  std::string integrator;
  /// Health-guard cadence: -1 disables it, 0 (default) checks the state once
  /// at the end of every run() call — free relative to a run's kernel work —
  /// and N > 0 splits each run into N-cycle chunks checked individually.
  std::int64_t health_every = 0;
  /// Deterministic fault-injection plan (`fault.*` keys); inert by default.
  resilience::FaultPlan fault;

  bool operator==(const SimulationConfig&) const = default;
};

/// "order=4 physics=acoustic courant=0.12 lts=on max-levels=12 ranks=0
///  partitioner=scotch-p feedback=0 executor=auto scheduler.mode=level-aware
///  scheduler.oversubscribe=forbid scheduler.chunk=0" — round-trips through
/// parse_simulation_config exactly. Opt-in keys (integrator, the resilience
/// family) print only when set, so default configs keep this exact string.
[[nodiscard]] std::string to_string(const SimulationConfig& cfg);

/// Applies one `key=value` setting to `cfg`. Returns false when `key` is not
/// a SimulationConfig key (bad values for known keys still throw, with a
/// message listing the accepted spellings). Accepts both the dotted keys
/// to_string prints (scheduler.mode=...) and the short scenario-CLI
/// spellings (scheduler=..., oversubscribe=..., chunk=...) — the one dispatch
/// both parse_simulation_config and ScenarioSpec::apply_override share, so
/// the two CLI surfaces cannot drift.
[[nodiscard]] bool try_simulation_config_key(SimulationConfig& cfg, std::string_view key,
                                             std::string_view value);

/// The keys try_simulation_config_key accepts, for error messages and usage
/// lines.
[[nodiscard]] std::string_view simulation_config_keys_help();

/// Parses the to_string format (keys in any order, all optional; defaults
/// apply to omitted keys). Throws CheckFailure naming the accepted keys and
/// spellings on any unknown key or bad value — the CLI entry point.
[[nodiscard]] SimulationConfig parse_simulation_config(std::string_view text);

class WaveSimulation {
public:
  /// Takes the mesh by value: the facade owns its whole stack (the SEM space
  /// keeps pointers into the mesh, so borrowing a caller temporary would
  /// dangle). Pass std::move(mesh) to avoid the copy.
  explicit WaveSimulation(mesh::HexMesh mesh, SimulationConfig cfg = {});
  ~WaveSimulation();

  [[nodiscard]] const sem::SemSpace& space() const noexcept { return *space_; }
  [[nodiscard]] const sem::WaveOperator& op() const noexcept { return *op_; }
  [[nodiscard]] const LevelAssignment& levels() const noexcept { return levels_; }
  [[nodiscard]] const LtsStructure& structure() const noexcept { return structure_; }
  [[nodiscard]] int ncomp() const noexcept { return op_->ncomp(); }
  [[nodiscard]] real_t dt() const noexcept;
  [[nodiscard]] real_t time() const noexcept;

  void add_source(std::array<real_t, 3> location, real_t peak_frequency,
                  std::array<real_t, 3> direction = {0, 0, 1}, real_t amplitude = 1.0);
  void add_receiver(std::array<real_t, 3> location, int component = 0);

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);

  /// Advances by (at least) `duration` simulated seconds; receivers sample at
  /// every coarse step. Returns the number of coarse steps taken. When the
  /// health guard is on (cfg.health_every >= 0, the default), the state is
  /// scanned for NaN/Inf and energy blow-up and resilience::NumericalBlowup
  /// thrown the moment a check trips.
  std::int64_t run(real_t duration, const std::function<void(real_t)>& on_step = {});

  /// Complete restartable image of the simulation at the current cycle
  /// boundary: backend state snapshot plus receiver trace history. Drains
  /// backend trace buffers first (hence non-const). Persist with
  /// resilience::save / resilience::load.
  [[nodiscard]] resilience::Checkpoint checkpoint();

  /// Rewinds (or fast-forwards) this simulation to a checkpoint — including
  /// one written by a *different* backend: same-backend restores are bitwise,
  /// cross-backend ones recompute the frozen-force accumulators (exact to
  /// roundoff). The facade must be built from the same scenario (same dof
  /// count and receiver set); mismatches throw CheckpointMismatch. Restoring
  /// onto a different dt (e.g. after halve_dt recovery) must be explicit via
  /// `allow_dt_change`.
  void restore(const resilience::Checkpoint& ck, bool allow_dt_change = false);

  /// Coarse cycles completed since construction (or since the last restore's
  /// snapshot count).
  [[nodiscard]] std::int64_t cycles() const;

  /// The displacement vector. Gathered from the backend and cached per cycle
  /// (invalidated by run/set_state/repartitioning), so distributed backends
  /// pay one gather per advance, not one per call.
  [[nodiscard]] const std::vector<real_t>& u() const;
  [[nodiscard]] const std::vector<sem::Receiver>& receivers() const noexcept { return receivers_; }
  [[nodiscard]] std::vector<sem::Receiver>& receivers() noexcept { return receivers_; }

  /// Element applies consumed so far (work counter; the serial-efficiency
  /// experiment compares this against the non-LTS scheme).
  [[nodiscard]] std::int64_t element_applies() const;

  /// Batched kernel calls consumed so far (every backend runs the
  /// BatchPlan block path; one call advances up to a block width of elements).
  [[nodiscard]] std::int64_t blocks_applied() const;

  /// Theoretical LTS speedup of this mesh/config (Eq. 9).
  [[nodiscard]] double theoretical_speedup() const { return core::theoretical_speedup(levels_); }

  /// Structured performance report for the run so far: the backend's
  /// per-phase timings, counters and roofline (Executor::run_report) with the
  /// facade's config string attached. Serialize with perf::to_json /
  /// perf::write_json.
  [[nodiscard]] perf::RunReport run_report() const;

  /// The execution backend driving this simulation and its registry name.
  [[nodiscard]] const Executor& executor() const noexcept { return *executor_; }
  [[nodiscard]] Executor& executor() noexcept { return *executor_; }
  [[nodiscard]] const std::string& executor_name() const noexcept { return executor_name_; }

  /// The rank-parallel solver when the backend is threaded, else nullptr.
  /// Exposes scheduler mode, per-rank busy/stall/steal counters, and
  /// per-level participation to benches and examples.
  [[nodiscard]] const runtime::ThreadedLtsSolver* threaded() const noexcept;
  [[nodiscard]] runtime::ThreadedLtsSolver* threaded() noexcept;

  /// The mesh partition driving the backend (empty for serial backends).
  [[nodiscard]] const partition::Partition& part() const noexcept;

  /// Repartitions from the backend's measured busy/stall/steal counters
  /// (partition::refine_with_feedback) and rebuilds it on the refined
  /// partition; the dynamical state, sources, and receiver traces carry over
  /// exactly, so a run continues mid-simulation. Requires a feedback-capable
  /// backend (threaded). run() triggers this automatically after
  /// `feedback_warmup_cycles` when configured; benches call it directly.
  void refine_partition_from_feedback();

  [[nodiscard]] const mesh::HexMesh& mesh() const noexcept { return mesh_; }

private:
  SimulationConfig cfg_;
  std::string executor_name_;
  mesh::HexMesh mesh_;
  std::unique_ptr<sem::SemSpace> space_;
  std::unique_ptr<sem::WaveOperator> op_;
  LevelAssignment levels_;
  LtsStructure structure_;
  std::unique_ptr<Executor> executor_;
  std::vector<sem::Receiver> receivers_;
  std::unique_ptr<resilience::HealthGuard> guard_;
  bool feedback_applied_ = false;

  void advance(std::int64_t cycles, const std::function<void(real_t)>& on_step);
};

} // namespace ltswave::core
