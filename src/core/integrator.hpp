#pragma once

/// \file integrator.hpp
/// The pluggable time-integrator axis of the LTS machinery.
///
/// The paper's local-time-stepping recursion (Sec. II, Algorithm 1) is
/// integrator-agnostic: what varies between schemes is only the per-substep
/// velocity *kick* and displacement *drift* applied at the deepest level of
/// the recursion. An Integrator is a small value object that yields those
/// coefficients; the solvers (LtsNewmarkSolver, ThreadedLtsSolver) consult it
/// at exactly the deepest-level update sites and keep every other update —
/// intermediate collapsed steps, velocity reconstructions, the top-level
/// physical step — in the scheme-independent form the algebra dictates.
///
/// Two integrators are built in:
///
///  * `newmark` — the paper's leapfrog/Newmark substeps: kick 0.5*delta on
///    the first substep (staggered start from rest), delta on the second,
///    drift delta on both. The default; selecting it is bitwise identical to
///    the pre-axis solvers.
///
///  * `leapfrog-stab` — stabilized leapfrog LTS after Grote, Michel & Sauter
///    (arXiv:2005.13350; convergence analysis arXiv:1703.07965). The two
///    deepest-level substeps use asymmetric spans s1 = (1+nu)*delta and
///    s2 = (1-nu)*delta with nu = 1/4: kick1 = s1/2, drift1 = s1,
///    kick2 = delta, drift2 = s2. Because s1 + s2 = 2*delta exactly, the
///    parent reconstruction wrapping the child pair is unchanged, and the
///    second-order consistency conditions s1*(s1+s2)/2 + s2*delta = 2*delta^2
///    hold for both the operator and the constant-forcing parts. The
///    resulting stability polynomial Phi(X) = 1 - 2X + C*X^2 with
///    C = (1+nu)^2*(1-nu)/2 = 75/128 > 1/2 satisfies |Phi| < 1 strictly on
///    the open stability interval — removing the tangency points at which
///    plain leapfrog-LTS is only neutrally stable (the resonances the
///    stabilization is named for). With a single level there is no deepest
///    recursion to stabilize and the scheme *is* plain leapfrog.
///
/// Integrators may own auxiliary state (none for the built-ins); it rides
/// through Executor::export_state / checkpoints as a flat real vector so a
/// future multi-stage scheme slots in without another format change.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace ltswave::core {

enum class IntegratorKind { Newmark, LeapfrogStab };

/// One substep's update coefficients: `v -= kick * F; u += drift * v`.
struct SubstepCoeffs {
  real_t kick;
  real_t drift;
};

class Integrator {
public:
  Integrator() = default;

  [[nodiscard]] static Integrator newmark() { return Integrator{IntegratorKind::Newmark}; }
  [[nodiscard]] static Integrator leapfrog_stab() {
    return Integrator{IntegratorKind::LeapfrogStab};
  }

  /// Parses a registry name: "newmark" (or empty — the default),
  /// "leapfrog-stab" (alias "stabilized-leapfrog"). Throws CheckFailure
  /// naming the accepted spellings otherwise.
  [[nodiscard]] static Integrator parse(std::string_view name);

  /// Canonical registry name ("newmark" | "leapfrog-stab").
  [[nodiscard]] std::string_view name() const noexcept;

  [[nodiscard]] IntegratorKind kind() const noexcept { return kind_; }

  /// Kick/drift coefficients for substep `first`/second of level `k` in an
  /// `num_levels`-deep recursion with base substep `delta`. Every level but
  /// the deepest — and every level of the Newmark scheme — uses the baseline
  /// {first ? 0.5*delta : delta, delta}; the stabilized scheme perturbs only
  /// the deepest level (and only when there *is* a recursion, num_levels > 1).
  [[nodiscard]] SubstepCoeffs coeffs(level_t k, level_t num_levels, bool first,
                                     real_t delta) const noexcept {
    if (kind_ == IntegratorKind::LeapfrogStab && num_levels > 1 && k == num_levels) {
      // nu = 1/4; spans s1 = (1+nu)*delta, s2 = (1-nu)*delta sum to 2*delta
      // exactly, so the wrapping reconstruction is untouched.
      if (first) return {real_t(0.5) * (real_t(1) + kNu) * delta, (real_t(1) + kNu) * delta};
      return {delta, (real_t(1) - kNu) * delta};
    }
    return {first ? real_t(0.5) * delta : delta, delta};
  }

  /// Integrator-owned auxiliary state to carry through checkpoints — empty
  /// for both built-in schemes (their state is exactly (u, v_half)).
  [[nodiscard]] std::vector<real_t> aux_state() const { return {}; }

  /// Restores auxiliary state exported by aux_state(). Both built-ins own
  /// none, so anything non-empty is a cross-scheme mismatch the caller
  /// should have rejected; tolerate it here (restore semantics degrade to
  /// recompute, exactly like import_accumulators).
  void adopt_aux(std::span<const real_t> /*aux*/) {}

  /// The stabilization parameter of the leapfrog-stab scheme.
  static constexpr real_t kNu = real_t(0.25);

  /// "newmark | leapfrog-stab" — for error messages and usage lines.
  [[nodiscard]] static std::string_view names_help() noexcept;

  bool operator==(const Integrator&) const = default;

private:
  explicit Integrator(IntegratorKind k) : kind_(k) {}

  IntegratorKind kind_ = IntegratorKind::Newmark;
};

} // namespace ltswave::core
