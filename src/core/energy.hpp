#pragma once

/// \file energy.hpp
/// Discrete energy diagnostics. The explicit Newmark / leap-frog pair
/// conserves the staggered energy
///   E^{n+1/2} = 1/2 ||v^{n+1/2}||_M^2 + 1/2 (u^n)^T K (u^{n+1})
/// below the CFL limit, and the LTS-Newmark scheme preserves this
/// conservation structure (paper Sec. II-B, citing [5] and [15]). Tests use
/// these helpers to verify the absence of energy drift over long runs.

#include "sem/wave_operator.hpp"

namespace ltswave::core {

/// 1/2 sum_g M_g |v_g|^2 over all components (interleaved layout).
real_t kinetic_energy(const sem::SemSpace& space, std::span<const real_t> v, int ncomp);

/// 1/2 a^T K b (symmetric in a,b up to roundoff).
real_t cross_potential_energy(const sem::WaveOperator& op, std::span<const real_t> a,
                              std::span<const real_t> b);

/// Staggered discrete energy from u^n, u^{n+1} and v^{n+1/2}.
real_t staggered_energy(const sem::WaveOperator& op, std::span<const real_t> u_n,
                        std::span<const real_t> u_np1, std::span<const real_t> v_half);

} // namespace ltswave::core
