#include "core/energy.hpp"

#include <numeric>

namespace ltswave::core {

real_t kinetic_energy(const sem::SemSpace& space, std::span<const real_t> v, int ncomp) {
  LTS_CHECK(v.size() == static_cast<std::size_t>(space.num_global_nodes()) * static_cast<std::size_t>(ncomp));
  real_t e = 0;
  for (gindex_t g = 0; g < space.num_global_nodes(); ++g) {
    real_t s = 0;
    for (int c = 0; c < ncomp; ++c) {
      const real_t vi = v[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp) + static_cast<std::size_t>(c)];
      s += vi * vi;
    }
    e += space.mass()[static_cast<std::size_t>(g)] * s;
  }
  return 0.5 * e;
}

real_t cross_potential_energy(const sem::WaveOperator& op, std::span<const real_t> a,
                              std::span<const real_t> b) {
  LTS_CHECK(a.size() == b.size());
  std::vector<real_t> kb(b.size(), 0.0);
  std::vector<index_t> all(static_cast<std::size_t>(op.space().num_elems()));
  for (std::size_t e = 0; e < all.size(); ++e) all[e] = static_cast<index_t>(e);
  auto ws = op.make_workspace();
  op.apply_add(all, b.data(), kb.data(), ws);
  real_t e = 0;
  for (std::size_t i = 0; i < a.size(); ++i) e += a[i] * kb[i];
  return 0.5 * e;
}

real_t staggered_energy(const sem::WaveOperator& op, std::span<const real_t> u_n,
                        std::span<const real_t> u_np1, std::span<const real_t> v_half) {
  return kinetic_energy(op.space(), v_half, op.ncomp()) +
         cross_potential_energy(op, u_n, u_np1);
}

} // namespace ltswave::core
