#include "core/lts_levels.hpp"

#include "sem/wave_operator.hpp"

#include <algorithm>
#include <cmath>

namespace ltswave::core {

namespace {
/// Smallest level k >= 1 with dt / 2^{k-1} <= dt_e (with a tiny tolerance so
/// dt_e == dt lands in level 1).
level_t level_for(real_t dt, real_t dt_e) {
  const real_t ratio = dt / dt_e;
  if (ratio <= 1.0 + 1e-12) return 1;
  return 1 + static_cast<level_t>(std::ceil(std::log2(ratio) - 1e-12));
}
} // namespace

LevelAssignment assign_levels(const mesh::HexMesh& m, real_t courant, level_t max_levels) {
  LTS_CHECK(m.num_elems() > 0 && courant > 0 && max_levels >= 1);
  const index_t ne = m.num_elems();
  std::vector<real_t> dte(static_cast<std::size_t>(ne));
  real_t dt_min = std::numeric_limits<real_t>::max();
  real_t dt_max = 0;
  for (index_t e = 0; e < ne; ++e) {
    dte[static_cast<std::size_t>(e)] = m.cfl_dt(e, courant);
    dt_min = std::min(dt_min, dte[static_cast<std::size_t>(e)]);
    dt_max = std::max(dt_max, dte[static_cast<std::size_t>(e)]);
  }

  // Global step selection: rather than always taking the largest stable step
  // (which lets a handful of extra-large elements push the *bulk* of the mesh
  // into level 2 and double its cost), choose the candidate dt minimizing the
  // model work rate  sum_k p_k(dt) * count_k(dt) / dt.  Elements with
  // dt_e > dt simply take the (stable, slightly conservative) coarse step.
  // Candidates: quantiles of the dt distribution, capped so at most
  // max_levels levels are needed (dt / 2^{max_levels-1} stable everywhere).
  const real_t dt_cap = dt_min * static_cast<real_t>(std::int64_t{1} << (max_levels - 1));
  std::vector<real_t> sorted = dte;
  std::sort(sorted.begin(), sorted.end());
  std::vector<real_t> candidates;
  constexpr int kQuantiles = 48;
  for (int q = 1; q <= kQuantiles; ++q) {
    const std::size_t idx =
        std::min(sorted.size() - 1, sorted.size() * static_cast<std::size_t>(q) / kQuantiles);
    candidates.push_back(std::min(sorted[idx], dt_cap));
  }
  candidates.push_back(std::min(dt_max, dt_cap));

  real_t dt = candidates.back();
  double best_rate = std::numeric_limits<double>::max();
  for (real_t cand : candidates) {
    if (cand <= 0) continue;
    double work = 0;
    for (real_t d : dte) work += static_cast<double>(level_rate(level_for(cand, d)));
    const double rate = work / static_cast<double>(cand);
    if (rate < best_rate * (1.0 - 1e-12)) {
      best_rate = rate;
      dt = cand;
    }
  }

  LevelAssignment out;
  out.dt = dt;
  out.elem_level.resize(static_cast<std::size_t>(ne));
  level_t max_seen = 1;
  for (index_t e = 0; e < ne; ++e) {
    const level_t k = level_for(dt, dte[static_cast<std::size_t>(e)]);
    out.elem_level[static_cast<std::size_t>(e)] = k;
    max_seen = std::max(max_seen, k);
  }
  out.num_levels = max_seen;
  out.level_counts.assign(static_cast<std::size_t>(max_seen), 0);
  for (level_t k : out.elem_level) ++out.level_counts[static_cast<std::size_t>(k - 1)];
  return out;
}

LevelAssignment assign_single_level(const mesh::HexMesh& m, real_t courant) {
  LTS_CHECK(m.num_elems() > 0 && courant > 0);
  LevelAssignment out;
  real_t dt_min = std::numeric_limits<real_t>::max();
  for (index_t e = 0; e < m.num_elems(); ++e) dt_min = std::min(dt_min, m.cfl_dt(e, courant));
  out.dt = dt_min;
  out.num_levels = 1;
  out.elem_level.assign(static_cast<std::size_t>(m.num_elems()), 1);
  out.level_counts = {m.num_elems()};
  return out;
}

double theoretical_speedup(const LevelAssignment& levels) {
  const double p_max = static_cast<double>(level_rate(levels.num_levels));
  double total = 0, weighted = 0;
  for (level_t k = 1; k <= levels.num_levels; ++k) {
    const auto cnt = static_cast<double>(levels.level_counts[static_cast<std::size_t>(k - 1)]);
    total += cnt;
    weighted += static_cast<double>(level_rate(k)) * cnt;
  }
  return p_max * total / weighted;
}

std::int64_t model_applies_per_cycle(const LevelAssignment& levels) {
  std::int64_t sum = 0;
  for (level_t k = 1; k <= levels.num_levels; ++k)
    sum += level_rate(k) * levels.level_counts[static_cast<std::size_t>(k - 1)];
  return sum;
}

std::vector<level_t> compute_node_levels(const sem::SemSpace& space,
                                         std::span<const level_t> elem_level) {
  LTS_CHECK(elem_level.size() == static_cast<std::size_t>(space.num_elems()));
  std::vector<level_t> node_level(static_cast<std::size_t>(space.num_global_nodes()), 0);
  const int npts = space.nodes_per_elem();
  for (index_t e = 0; e < space.num_elems(); ++e) {
    const gindex_t* l2g = space.elem_nodes(e);
    const level_t lev = elem_level[static_cast<std::size_t>(e)];
    for (int q = 0; q < npts; ++q) {
      auto& nl = node_level[static_cast<std::size_t>(l2g[q])];
      nl = std::max(nl, lev);
    }
  }
  return node_level;
}

void LtsStructure::apply_level_restricted(const sem::WaveOperator& op,
                                          std::span<const index_t> elems, level_t k,
                                          const real_t* u, real_t* out,
                                          sem::KernelWorkspace& ws) const {
  if (mask.empty())
    op.apply_add_level(elems, node_level.data(), k, u, out, ws);
  else
    op.apply_add_level(elems, mask, k, u, out, ws);
}

std::int64_t LtsStructure::applies_per_cycle() const {
  std::int64_t sum = 0;
  for (level_t k = 1; k <= num_levels; ++k)
    sum += level_rate(k) * static_cast<std::int64_t>(eval_elems[static_cast<std::size_t>(k - 1)].size());
  return sum;
}

LtsStructure build_lts_structure(const sem::SemSpace& space, const LevelAssignment& levels) {
  LtsStructure s;
  s.num_levels = levels.num_levels;
  s.node_level = compute_node_levels(space, levels.elem_level);

  const int npts = space.nodes_per_elem();
  const index_t ne = space.num_elems();
  const gindex_t nn = space.num_global_nodes();
  const level_t nl = levels.num_levels;

  s.eval_elems.assign(static_cast<std::size_t>(nl), {});
  s.eval_rows.assign(static_cast<std::size_t>(nl), {});
  s.update_rows.assign(static_cast<std::size_t>(nl), {});
  s.recon_rows.assign(static_cast<std::size_t>(nl), {});

  // E(k): element e participates in level k's evaluation iff it contains a
  // node of exactly level k. elem_max[e] = finest node level within e.
  std::vector<level_t> elem_max(static_cast<std::size_t>(ne), 0);
  {
    std::vector<std::uint8_t> present(static_cast<std::size_t>(nl));
    for (index_t e = 0; e < ne; ++e) {
      std::fill(present.begin(), present.end(), 0);
      const gindex_t* l2g = space.elem_nodes(e);
      level_t emax = 0;
      for (int q = 0; q < npts; ++q) {
        const level_t lev = s.node_level[static_cast<std::size_t>(l2g[q])];
        present[static_cast<std::size_t>(lev - 1)] = 1;
        emax = std::max(emax, lev);
      }
      elem_max[static_cast<std::size_t>(e)] = emax;
      for (level_t k = 1; k <= nl; ++k)
        if (present[static_cast<std::size_t>(k - 1)]) s.eval_elems[static_cast<std::size_t>(k - 1)].push_back(e);
    }
  }

  // rho_n = max over elements containing n of elem_max[e]: the finest level
  // whose evaluation writes to row n.
  s.node_rho.assign(static_cast<std::size_t>(nn), 0);
  for (index_t e = 0; e < ne; ++e) {
    const gindex_t* l2g = space.elem_nodes(e);
    for (int q = 0; q < npts; ++q) {
      auto& r = s.node_rho[static_cast<std::size_t>(l2g[q])];
      r = std::max(r, elem_max[static_cast<std::size_t>(e)]);
    }
  }

  // Row sets. eval_rows via scatter-dedup per level.
  {
    std::vector<level_t> last_mark(static_cast<std::size_t>(nn), 0);
    for (level_t k = 1; k <= nl; ++k) {
      auto& rows = s.eval_rows[static_cast<std::size_t>(k - 1)];
      for (index_t e : s.eval_elems[static_cast<std::size_t>(k - 1)]) {
        const gindex_t* l2g = space.elem_nodes(e);
        for (int q = 0; q < npts; ++q) {
          const gindex_t g = l2g[q];
          if (last_mark[static_cast<std::size_t>(g)] != k) {
            last_mark[static_cast<std::size_t>(g)] = k;
            rows.push_back(g);
          }
        }
      }
      std::sort(rows.begin(), rows.end());
    }
  }

  for (gindex_t g = 0; g < nn; ++g) {
    const level_t rho = s.node_rho[static_cast<std::size_t>(g)];
    s.update_rows[static_cast<std::size_t>(rho - 1)].push_back(g);
    // g belongs to R(k+1) (= recon rows of level k) for every k < rho.
    for (level_t k = 1; k < rho; ++k) s.recon_rows[static_cast<std::size_t>(k - 1)].push_back(g);
  }

  s.mask = sem::LevelMask(space, s.node_level, nl);
  return s;
}

} // namespace ltswave::core
