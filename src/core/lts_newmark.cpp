#include "core/lts_newmark.hpp"

#include <algorithm>
#include <string>

#include "common/timer.hpp"

namespace ltswave::core {

// The lumped inverse mass is shared by all field components, so both solvers
// keep one entry per *node* (not per dof) and index it by g inside the
// component loops — one third of the mass-vector traffic on every elastic row
// update. Dirichlet rows are realized by zeroing the node's entry
// (set_fixed_nodes), which zeroes every component at once, exactly as the
// former per-dof expansion did.

namespace {

/// The production solver's batched plan: one group per level over E(k), in
/// level order (rank is trivially 0 here), with the level-homogeneous
/// elements moved first so the bulk of each group's blocks take the mask-free
/// fast path and only the trailing level-boundary blocks carry masks.
sem::BatchPlan make_level_plan(const sem::WaveOperator& op, const LtsStructure& structure) {
  std::vector<sem::BatchPlan::Group> groups;
  groups.reserve(static_cast<std::size_t>(structure.num_levels));
  for (level_t k = 1; k <= structure.num_levels; ++k) {
    sem::BatchPlan::Group g;
    g.elems = sem::order_homogeneous_first(
        op.space(), structure.eval_elems[static_cast<std::size_t>(k - 1)], k,
        structure.node_level);
    g.level = k;
    g.node_level = structure.node_level;
    groups.push_back(std::move(g));
  }
  return sem::BatchPlan(op.space(), op.ncomp(), std::move(groups));
}

} // namespace

// ===========================================================================
// Production solver
// ===========================================================================

LtsNewmarkSolver::LtsNewmarkSolver(const sem::WaveOperator& op, const LevelAssignment& levels,
                                   const LtsStructure& structure, Integrator integ)
    : op_(&op),
      levels_(&levels),
      structure_(&structure),
      integ_(integ),
      dt_(levels.dt),
      ncomp_(op.ncomp()),
      ws_(op.make_workspace()),
      plan_(make_level_plan(op, structure)) {
  const auto& space = op.space();
  const std::size_t ndof =
      static_cast<std::size_t>(space.num_global_nodes()) * static_cast<std::size_t>(ncomp_);
  inv_mass_ = space.inv_mass();
  u_.assign(ndof, 0.0);
  v_.assign(ndof, 0.0);
  scratch_.assign(ndof, 0.0);
  const level_t nl = levels.num_levels;
  if (nl > 1) {
    cumulative_.assign(ndof, 0.0);
    forces_.assign(static_cast<std::size_t>(nl - 1), std::vector<real_t>(ndof, 0.0));
    usave_.assign(static_cast<std::size_t>(nl - 1), std::vector<real_t>(ndof, 0.0));
    vt_.assign(static_cast<std::size_t>(nl - 1), std::vector<real_t>(ndof, 0.0)); // vt_[k-2] for level k
  }
  sources_by_level_.assign(static_cast<std::size_t>(nl), {});
  src_scratch_.assign(ndof, 0.0);
  applies_per_level_.assign(static_cast<std::size_t>(nl), 0);
  eval_seconds_.assign(static_cast<std::size_t>(nl), 0.0);
  eval_count_.assign(static_cast<std::size_t>(nl), 0);
}

void LtsNewmarkSolver::fill_phases(perf::RunReport& report) const {
  for (level_t k = 1; k <= levels_->num_levels; ++k) {
    report.add_phase("eval.L" + std::to_string(k), eval_seconds_[static_cast<std::size_t>(k - 1)],
                     eval_count_[static_cast<std::size_t>(k - 1)]);
  }
  report.add_phase("reduce", reduce_seconds_, reduce_count_);
  report.add_phase("update", update_seconds_, update_count_);
  if (!sources_.empty()) report.add_phase("sources", source_seconds_, source_count_);
}

void LtsNewmarkSolver::add_source(const sem::PointSource& src) {
  sources_.push_back(src);
  const level_t rho = structure_->node_rho[static_cast<std::size_t>(src.node)];
  sources_by_level_[static_cast<std::size_t>(rho - 1)].push_back(src);
}

void LtsNewmarkSolver::set_fixed_nodes(std::span<const gindex_t> nodes) {
  for (gindex_t g : nodes) inv_mass_[static_cast<std::size_t>(g)] = 0.0;
}

void LtsNewmarkSolver::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  LTS_CHECK(u0.size() == u_.size() && v0.size() == v_.size());
  std::copy(u0.begin(), u0.end(), u_.begin());
  // v^{-1/2} = v(0) - dt/2 * a(0), a(0) = Minv (f(0) - K u0). One-shot
  // initialization through the per-element path: materializing the
  // operator's full-mesh plan just for this would duplicate every metric
  // slab already held by the level plan. Neither work counter includes it
  // (set_state is not cycle work), matching element_applies' convention.
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  std::vector<index_t> all(static_cast<std::size_t>(op_->space().num_elems()));
  for (std::size_t e = 0; e < all.size(); ++e) all[e] = static_cast<index_t>(e);
  op_->apply_add(all, u_.data(), scratch_.data(), ws_);
  std::vector<real_t> f(u_.size(), 0.0);
  for (const auto& s : sources_) s.accumulate(0.0, ncomp_, f.data());
  for (gindex_t g = 0; g < op_->space().num_global_nodes(); ++g) {
    const real_t im = inv_mass_[static_cast<std::size_t>(g)];
    for (int c = 0; c < ncomp_; ++c) {
      const std::size_t i =
          static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
      v_[i] = v0[i] - 0.5 * dt_ * im * (f[i] - scratch_[i]);
    }
  }
  time_ = 0;
}

void LtsNewmarkSolver::adopt_raw_state(std::span<const real_t> u, std::span<const real_t> v_half,
                                       real_t time, std::int64_t applies_total,
                                       std::span<const std::int64_t> applies_per_level,
                                       std::int64_t blocks_applied) {
  LTS_CHECK(u.size() == u_.size() && v_half.size() == v_.size());
  LTS_CHECK(applies_per_level.size() == applies_per_level_.size());
  std::copy(u.begin(), u.end(), u_.begin());
  std::copy(v_half.begin(), v_half.end(), v_.begin());
  time_ = time;
  cycle_t0_ = time;
  applies_total_ = applies_total;
  std::copy(applies_per_level.begin(), applies_per_level.end(), applies_per_level_.begin());
  blocks_applied_ = blocks_applied;
}

void LtsNewmarkSolver::import_accumulators(const std::vector<std::vector<real_t>>& forces,
                                           std::span<const real_t> cumulative) {
  if (forces.size() != forces_.size() || cumulative.size() != cumulative_.size()) return;
  for (std::size_t k = 0; k < forces.size(); ++k)
    if (forces[k].size() != forces_[k].size()) return;
  for (std::size_t k = 0; k < forces.size(); ++k)
    std::copy(forces[k].begin(), forces[k].end(), forces_[k].begin());
  std::copy(cumulative.begin(), cumulative.end(), cumulative_.begin());
}

void LtsNewmarkSolver::apply_sources_to(level_t k, real_t t_sub,
                                        std::vector<real_t>& force_accum) {
  // Adds -Minv f(t) into the force accumulator so the common update
  // v -= delta * F realizes v += delta * Minv f. Touched dofs are recorded so
  // the (full-length, persistently zero) accumulator can be cleared in O(#src).
  for (const auto& s : sources_by_level_[static_cast<std::size_t>(k - 1)]) {
    const real_t val = s.amplitude * s.wavelet(t_sub);
    const real_t im = inv_mass_[static_cast<std::size_t>(s.node)];
    for (int c = 0; c < ncomp_; ++c) {
      const std::size_t i =
          static_cast<std::size_t>(s.node) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
      force_accum[i] -= im * val * s.direction[static_cast<std::size_t>(c)];
      src_dirty_.push_back(i);
    }
  }
}

void LtsNewmarkSolver::clear_source_scratch() {
  for (std::size_t i : src_dirty_) src_scratch_[i] = 0.0;
  src_dirty_.clear();
}

void LtsNewmarkSolver::recompute_force(level_t k) {
  // forces_[k-1] <- Minv K P_k u on rows(E(k)); cumulative_ updated by delta.
  const auto& elems = structure_->eval_elems[static_cast<std::size_t>(k - 1)];
  const auto& rows = structure_->eval_rows[static_cast<std::size_t>(k - 1)];
  auto& fk = forces_[static_cast<std::size_t>(k - 1)];

  for (gindex_t g : rows)
    for (int c = 0; c < ncomp_; ++c)
      scratch_[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)] = 0.0;

  apply_level_blocks(k);
  applies_total_ += static_cast<std::int64_t>(elems.size());
  applies_per_level_[static_cast<std::size_t>(k - 1)] += static_cast<std::int64_t>(elems.size());

  const WallTimer timer;
  for (gindex_t g : rows) {
    const real_t im = inv_mass_[static_cast<std::size_t>(g)];
    for (int c = 0; c < ncomp_; ++c) {
      const std::size_t i =
          static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
      const real_t fresh = im * scratch_[i];
      cumulative_[i] += fresh - fk[i];
      fk[i] = fresh;
    }
  }
  reduce_seconds_ += timer.seconds();
  ++reduce_count_;
}

void LtsNewmarkSolver::apply_level_blocks(level_t k) {
  // scratch_ += K P_k u through the level's block group — the batched
  // production path (per-block masks, homogeneous-block fast gather).
  const auto range = plan_.group_blocks(static_cast<std::size_t>(k - 1));
  const WallTimer timer;
  op_->apply_add_blocks(plan_, range.first, range.last, u_.data(), scratch_.data(), ws_);
  eval_seconds_[static_cast<std::size_t>(k - 1)] += timer.seconds();
  ++eval_count_[static_cast<std::size_t>(k - 1)];
  blocks_applied_ += range.count();
}

void LtsNewmarkSolver::collapsed_update(level_t k, std::span<const gindex_t> rows, bool first,
                                        SubstepCoeffs cs, real_t t_sub, std::vector<real_t>& vt,
                                        const real_t* extra) {
  // Rows whose forces are all frozen at this depth: one leapfrog substep with
  // F = cumulative (+ extra, the level's own fresh evaluation) (+ sources).
  //
  // Sources are sampled at the *cycle start* time, not the substep time: the
  // velocity reconstruction (Eq. 14) folds the inner evolution through a
  // (dt - tau)-shaped kernel, so only an even-in-tau source term — i.e. one
  // frozen over the cycle — preserves the scheme's second-order accuracy
  // (this mirrors the time-reversibility requirement on Eq. 11). A constant
  // source passes through every nested reconstruction exactly, which makes
  // the whole cycle a midpoint rule in the source, exactly like the non-LTS
  // Newmark step at Delta-t.
  (void)t_sub;
  const bool has_sources = !sources_by_level_[static_cast<std::size_t>(k - 1)].empty();
  if (has_sources) {
    const WallTimer src_timer;
    apply_sources_to(k, cycle_t0_, src_scratch_);
    source_seconds_ += src_timer.seconds();
    ++source_count_;
  }
  const WallTimer timer;
  for (gindex_t g : rows) {
    for (int c = 0; c < ncomp_; ++c) {
      const std::size_t i =
          static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
      real_t F = cumulative_[i];
      if (extra) F += extra[i];
      if (has_sources) F += src_scratch_[i];
      if (first)
        vt[i] = -cs.kick * F;
      else
        vt[i] -= cs.kick * F;
      u_[i] += cs.drift * vt[i];
    }
  }
  update_seconds_ += timer.seconds();
  ++update_count_;
  if (has_sources) clear_source_scratch();
}

void LtsNewmarkSolver::run_level(level_t k, real_t t0) {
  const level_t nl = levels_->num_levels;
  const real_t delta = dt_ / static_cast<real_t>(level_rate(k));
  auto& vt = vt_[static_cast<std::size_t>(k - 2)];

  for (int m = 0; m < 2; ++m) {
    const bool first = (m == 0);
    const real_t tm = t0 + static_cast<real_t>(m) * delta;

    if (k == nl) {
      // Deepest level: leapfrog with fresh A P_N u plus frozen forces.
      const auto& elems = structure_->eval_elems[static_cast<std::size_t>(k - 1)];
      const auto& rows = structure_->eval_rows[static_cast<std::size_t>(k - 1)];
      for (gindex_t g : rows)
        for (int c = 0; c < ncomp_; ++c)
          scratch_[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)] = 0.0;
      apply_level_blocks(k);
      applies_total_ += static_cast<std::int64_t>(elems.size());
      applies_per_level_[static_cast<std::size_t>(k - 1)] += static_cast<std::int64_t>(elems.size());
      // Scale K u by Minv in place (rows only).
      {
        const WallTimer timer;
        for (gindex_t g : rows) {
          const real_t im = inv_mass_[static_cast<std::size_t>(g)];
          for (int c = 0; c < ncomp_; ++c)
            scratch_[static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)] *= im;
        }
        reduce_seconds_ += timer.seconds();
        ++reduce_count_;
      }
      collapsed_update(k, structure_->update_rows[static_cast<std::size_t>(k - 1)], first,
                       integ_.coeffs(k, nl, first, delta), tm, vt, scratch_.data());
      continue;
    }

    // Freeze this level's own force contribution, save the field where the
    // child will evolve it, then recurse.
    recompute_force(k);
    const auto& recon = structure_->recon_rows[static_cast<std::size_t>(k - 1)];
    auto& save = usave_[static_cast<std::size_t>(k - 1)];
    {
      const WallTimer timer;
      for (gindex_t g : recon)
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i =
              static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          save[i] = u_[i];
        }
      update_seconds_ += timer.seconds();
      ++update_count_;
    }

    run_level(k + 1, tm);

    // Velocity reconstruction on the rows the child evolved (Algorithm 1's
    // v~_{m+1/2} update), then reset u to the reconstructed value.
    {
      const WallTimer timer;
      for (gindex_t g : recon)
        for (int c = 0; c < ncomp_; ++c) {
          const std::size_t i =
              static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
          if (first)
            vt[i] = (u_[i] - save[i]) / delta;
          else
            vt[i] += 2.0 * (u_[i] - save[i]) / delta;
          u_[i] = save[i] + delta * vt[i];
        }
      update_seconds_ += timer.seconds();
      ++update_count_;
    }

    // Rows frozen during the child's run advance by one collapsed leapfrog
    // step with F = sum_{j<=k} forces (== cumulative on these rows).
    // Non-deepest levels always use the baseline coefficients — coeffs()
    // perturbs only the deepest level, so this is the literal historical
    // update for every integrator.
    collapsed_update(k, structure_->update_rows[static_cast<std::size_t>(k - 1)], first,
                     integ_.coeffs(k, nl, first, delta), tm, vt, nullptr);
  }
}

void LtsNewmarkSolver::step() {
  const level_t nl = levels_->num_levels;
  if (nl == 1) {
    // Plain Newmark. The single-level plan group covers every element and is
    // entirely homogeneous, so the blocks apply the unmasked gather.
    const auto& elems = structure_->eval_elems[0];
    std::fill(scratch_.begin(), scratch_.end(), 0.0);
    apply_level_blocks(1);
    applies_total_ += static_cast<std::int64_t>(elems.size());
    applies_per_level_[0] += static_cast<std::int64_t>(elems.size());
    const bool has_sources = !sources_.empty();
    if (has_sources) {
      const WallTimer src_timer;
      apply_sources_to(1, time_, src_scratch_);
      source_seconds_ += src_timer.seconds();
      ++source_count_;
    }
    const WallTimer timer;
    for (gindex_t g = 0; g < op_->space().num_global_nodes(); ++g) {
      const real_t im = inv_mass_[static_cast<std::size_t>(g)];
      for (int c = 0; c < ncomp_; ++c) {
        const std::size_t i =
            static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
        real_t F = im * scratch_[i];
        if (has_sources) F += src_scratch_[i];
        v_[i] -= dt_ * F;
        u_[i] += dt_ * v_[i];
      }
    }
    update_seconds_ += timer.seconds();
    ++update_count_;
    if (has_sources) clear_source_scratch();
    time_ += dt_;
    return;
  }

  const real_t t0 = time_;
  cycle_t0_ = t0;
  recompute_force(1);

  const auto& recon = structure_->recon_rows[0]; // R(2)
  auto& save = usave_[0];
  for (gindex_t g : recon)
    for (int c = 0; c < ncomp_; ++c) {
      const std::size_t i =
          static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
      save[i] = u_[i];
    }

  run_level(2, t0);

  // Level-1 reconstruction with the *physical* staggered velocity (Eq. 14):
  // v^{n+1/2} = v^{n-1/2} + 2 (u~(dt) - u^n)/dt, u^{n+1} = u^n + dt v^{n+1/2}.
  {
    const WallTimer timer;
    for (gindex_t g : recon)
      for (int c = 0; c < ncomp_; ++c) {
        const std::size_t i =
            static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
        v_[i] += 2.0 * (u_[i] - save[i]) / dt_;
        u_[i] = save[i] + dt_ * v_[i];
      }
    update_seconds_ += timer.seconds();
    ++update_count_;
  }

  // Far-coarse rows: one standard Newmark step with the frozen level-1 force.
  {
    const auto& rows = structure_->update_rows[0]; // S(1)
    const bool has_sources = !sources_by_level_[0].empty();
    if (has_sources) {
      const WallTimer src_timer;
      apply_sources_to(1, t0, src_scratch_);
      source_seconds_ += src_timer.seconds();
      ++source_count_;
    }
    const WallTimer timer;
    for (gindex_t g : rows)
      for (int c = 0; c < ncomp_; ++c) {
        const std::size_t i =
            static_cast<std::size_t>(g) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c);
        real_t F = cumulative_[i];
        if (has_sources) F += src_scratch_[i];
        v_[i] -= dt_ * F;
        u_[i] += dt_ * v_[i];
      }
    update_seconds_ += timer.seconds();
    ++update_count_;
    if (has_sources) clear_source_scratch();
  }
  time_ = t0 + dt_;
}

// ===========================================================================
// Reference solver
// ===========================================================================

LtsNewmarkReference::LtsNewmarkReference(const sem::WaveOperator& op,
                                         const LevelAssignment& levels,
                                         const LtsStructure& structure, Integrator integ)
    : op_(&op),
      levels_(&levels),
      structure_(&structure),
      integ_(integ),
      dt_(levels.dt),
      ncomp_(op.ncomp()),
      ws_(op.make_workspace()) {
  const auto& space = op.space();
  const std::size_t ndof =
      static_cast<std::size_t>(space.num_global_nodes()) * static_cast<std::size_t>(ncomp_);
  inv_mass_ = space.inv_mass();
  u_.assign(ndof, 0.0);
  v_.assign(ndof, 0.0);
}

void LtsNewmarkReference::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  LTS_CHECK(u0.size() == u_.size() && v0.size() == v_.size());
  std::copy(u0.begin(), u0.end(), u_.begin());
  std::vector<index_t> all(static_cast<std::size_t>(op_->space().num_elems()));
  for (std::size_t e = 0; e < all.size(); ++e) all[e] = static_cast<index_t>(e);
  std::vector<real_t> ku(u_.size(), 0.0);
  op_->apply_add(all, u_.data(), ku.data(), ws_);
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (std::size_t g = 0; g < inv_mass_.size(); ++g) {
    const real_t im = inv_mass_[g];
    for (std::size_t c = 0; c < nc; ++c) v_[g * nc + c] = v0[g * nc + c] + 0.5 * dt_ * im * ku[g * nc + c];
  }
  time_ = 0;
}

std::vector<real_t> LtsNewmarkReference::apply_level(level_t k, const std::vector<real_t>& field) {
  std::vector<real_t> out(field.size(), 0.0);
  structure_->apply_level_restricted(*op_, structure_->eval_elems[static_cast<std::size_t>(k - 1)],
                                     k, field.data(), out.data(), ws_);
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (std::size_t g = 0; g < inv_mass_.size(); ++g) {
    const real_t im = inv_mass_[g];
    for (std::size_t c = 0; c < nc; ++c) out[g * nc + c] *= im;
  }
  return out;
}

std::vector<real_t> LtsNewmarkReference::run_level(level_t k, const std::vector<real_t>& u0,
                                                   const std::vector<real_t>& frozen) {
  const level_t nl = levels_->num_levels;
  const real_t delta = dt_ / static_cast<real_t>(level_rate(k));
  std::vector<real_t> ut = u0;
  std::vector<real_t> vt(u0.size(), 0.0);

  for (int m = 0; m < 2; ++m) {
    const bool first = (m == 0);
    if (k == nl) {
      const SubstepCoeffs cs = integ_.coeffs(k, nl, first, delta);
      auto F = apply_level(k, ut);
      for (std::size_t i = 0; i < F.size(); ++i) F[i] += frozen[i];
      for (std::size_t i = 0; i < ut.size(); ++i) {
        if (first)
          vt[i] = -cs.kick * F[i];
        else
          vt[i] -= cs.kick * F[i];
        ut[i] += cs.drift * vt[i];
      }
    } else {
      auto fk = apply_level(k, ut);
      for (std::size_t i = 0; i < fk.size(); ++i) fk[i] += frozen[i];
      const auto child = run_level(k + 1, ut, fk);
      for (std::size_t i = 0; i < ut.size(); ++i) {
        if (first)
          vt[i] = (child[i] - ut[i]) / delta;
        else
          vt[i] += 2.0 * (child[i] - ut[i]) / delta;
        ut[i] += delta * vt[i];
      }
    }
  }
  return ut;
}

void LtsNewmarkReference::step() {
  const level_t nl = levels_->num_levels;
  if (nl == 1) {
    auto F = apply_level(1, u_);
    for (std::size_t i = 0; i < u_.size(); ++i) {
      v_[i] -= dt_ * F[i];
      u_[i] += dt_ * v_[i];
    }
    time_ += dt_;
    return;
  }
  const auto f1 = apply_level(1, u_);
  const auto fine = run_level(2, u_, f1);
  for (std::size_t i = 0; i < u_.size(); ++i) {
    v_[i] += 2.0 * (fine[i] - u_[i]) / dt_;
    u_[i] += dt_ * v_[i];
  }
  time_ += dt_;
}

} // namespace ltswave::core
