#include "core/newmark.hpp"

#include "common/timer.hpp"

namespace ltswave::core {

NewmarkSolver::NewmarkSolver(const sem::WaveOperator& op, real_t dt)
    : op_(&op), dt_(dt), ncomp_(op.ncomp()), ws_(op.make_workspace()) {
  LTS_CHECK(dt > 0);
  const auto& space = op.space();
  const std::size_t ndof = static_cast<std::size_t>(space.num_global_nodes()) * static_cast<std::size_t>(ncomp_);
  u_.assign(ndof, 0.0);
  v_.assign(ndof, 0.0);
  scratch_.assign(ndof, 0.0);
  // One inverse-mass entry per node; all components share it.
  inv_mass_ = space.inv_mass();
}

/// scratch_ += K u over every element, through the operator's full-mesh
/// BatchPlan (lazily built on the first call) — the batched production path.
void NewmarkSolver::apply_full() {
  const sem::BatchPlan& plan = op_->full_plan();
  const WallTimer timer;
  op_->apply_add_blocks(plan, 0, plan.num_blocks(), u_.data(), scratch_.data(), ws_);
  eval_seconds_ += timer.seconds();
  ++eval_count_;
  applies_ += static_cast<std::int64_t>(op_->space().num_elems());
  blocks_ += plan.num_blocks();
}

void NewmarkSolver::fill_phases(perf::RunReport& report) const {
  report.add_phase("eval.L1", eval_seconds_, eval_count_);
  report.add_phase("update", update_seconds_, update_count_);
  if (!sources_.empty()) report.add_phase("sources", source_seconds_, source_count_);
}

void NewmarkSolver::set_fixed_nodes(std::span<const gindex_t> nodes) {
  for (gindex_t g : nodes) inv_mass_[static_cast<std::size_t>(g)] = 0.0;
}

void NewmarkSolver::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  LTS_CHECK(u0.size() == u_.size() && v0.size() == v_.size());
  std::copy(u0.begin(), u0.end(), u_.begin());
  // v^{-1/2} = v(0) - dt/2 * a(0) with a(0) = Minv (f(0) - K u0).
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  apply_full();
  std::vector<real_t> f(u_.size(), 0.0);
  for (const auto& s : sources_) s.accumulate(0.0, ncomp_, f.data());
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (std::size_t g = 0; g < inv_mass_.size(); ++g) {
    const real_t im = inv_mass_[g];
    for (std::size_t c = 0; c < nc; ++c) {
      const std::size_t i = g * nc + c;
      v_[i] = v0[i] - 0.5 * dt_ * im * (f[i] - scratch_[i]);
    }
  }
  time_ = 0;
}

void NewmarkSolver::adopt_raw_state(std::span<const real_t> u, std::span<const real_t> v_half,
                                    real_t time, std::int64_t element_applies,
                                    std::int64_t blocks_applied) {
  LTS_CHECK(u.size() == u_.size() && v_half.size() == v_.size());
  std::copy(u.begin(), u.end(), u_.begin());
  std::copy(v_half.begin(), v_half.end(), v_.begin());
  time_ = time;
  applies_ = element_applies;
  blocks_ = blocks_applied;
}

void NewmarkSolver::step() {
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  apply_full();
  if (!sources_.empty()) {
    const WallTimer src_timer;
    for (const auto& s : sources_) {
      // Subtracting the source from K u realizes v += dt Minv (f - K u).
      const real_t val = -s.amplitude * s.wavelet(time_);
      for (int c = 0; c < ncomp_; ++c)
        scratch_[static_cast<std::size_t>(s.node) * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)] +=
            val * s.direction[static_cast<std::size_t>(c)];
    }
    source_seconds_ += src_timer.seconds();
    ++source_count_;
  }
  const WallTimer timer;
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (std::size_t g = 0; g < inv_mass_.size(); ++g) {
    const real_t im = inv_mass_[g];
    for (std::size_t c = 0; c < nc; ++c) {
      const std::size_t i = g * nc + c;
      v_[i] -= dt_ * im * scratch_[i];
      u_[i] += dt_ * v_[i];
    }
  }
  update_seconds_ += timer.seconds();
  ++update_count_;
  time_ += dt_;
}

} // namespace ltswave::core
