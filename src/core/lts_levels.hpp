#pragma once

/// \file lts_levels.hpp
/// LTS level machinery (paper Sec. II):
///  * per-element CFL steps (Eq. 7) binned into power-of-two levels (Eq. 16),
///  * the speedup model (Eq. 9, generalized to N levels),
///  * per-GLL-node levels (a node belongs to the finest level among the
///    elements sharing it — the SEM node-sharing subtlety of Sec. II-C),
///  * the evaluation/update sets the production solver needs:
///      E(k)  = elements carrying at least one level-k node (own + halo),
///      rho_n = finest level whose evaluation touches node n,
///      S(k)  = nodes updated at level k's rate (rho_n == k).

#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "sem/kernels.hpp"
#include "sem/sem_space.hpp"

namespace ltswave::sem {
class WaveOperator;
class KernelWorkspace;
} // namespace ltswave::sem

namespace ltswave::core {

/// Element -> level binning for a mesh.
struct LevelAssignment {
  level_t num_levels = 1;
  real_t dt = 0;                    ///< coarsest (global) step Delta-t
  std::vector<level_t> elem_level;  ///< 1-based level per element
  std::vector<index_t> level_counts; ///< elements per level (size num_levels)

  /// p_k for level k (1-based).
  [[nodiscard]] std::int64_t rate(level_t k) const { return level_rate(k); }
};

/// Bins elements into levels: dt_e = courant * h_e / vp_e, the coarsest level
/// uses dt = max_e dt_e, and element e joins the smallest level k with
/// dt / 2^{k-1} <= dt_e. If more than `max_levels` would be needed, dt is
/// reduced so exactly max_levels remain (the finest elements stay stable).
LevelAssignment assign_levels(const mesh::HexMesh& m, real_t courant, level_t max_levels = 12);

/// Uniform (non-LTS) assignment: every element in level 1 with the globally
/// smallest stable step (the reference scheme's Delta-t_min).
LevelAssignment assign_single_level(const mesh::HexMesh& m, real_t courant);

/// Paper Eq. 9 generalized: speedup = (p_N * E_total) / sum_k p_k * E_k.
double theoretical_speedup(const LevelAssignment& levels);

/// Element applies per LTS cycle under the ideal model (no halo): sum_k p_k*E_k.
std::int64_t model_applies_per_cycle(const LevelAssignment& levels);

/// Node level: max level over elements sharing the node (finest wins).
std::vector<level_t> compute_node_levels(const sem::SemSpace& space,
                                         std::span<const level_t> elem_level);

/// Evaluation/update sets for the production LTS solver.
struct LtsStructure {
  level_t num_levels = 1;
  std::vector<level_t> node_level; ///< per global node
  std::vector<level_t> node_rho;   ///< updater level per global node (>= node_level)

  /// eval_elems[k-1] = E(k): elements with at least one level-k node.
  std::vector<std::vector<index_t>> eval_elems;
  /// eval_rows[k-1]: unique global nodes of E(k) elements (rows written by the
  /// level-k force evaluation).
  std::vector<std::vector<gindex_t>> eval_rows;
  /// update_rows[k-1] = S(k): nodes with rho == k.
  std::vector<std::vector<gindex_t>> update_rows;
  /// recon_rows[k-1] = R(k+1): nodes with rho >= k+1 (empty for k == N).
  std::vector<std::vector<gindex_t>> recon_rows;

  /// Precomputed branch-free column masks for the level-restricted apply
  /// (homogeneous-element fast path + per-level 0/1 masks for mixed
  /// elements); consumed by WaveOperator::apply_add_level(.., LevelMask, ..).
  sem::LevelMask mask;

  /// out += K P_k u over `elems`: dispatches to the branch-free LevelMask
  /// gather when the mask is built (structures from build_lts_structure),
  /// falling back to the per-node level test for hand-built structures.
  void apply_level_restricted(const sem::WaveOperator& op, std::span<const index_t> elems,
                              level_t k, const real_t* u, real_t* out,
                              sem::KernelWorkspace& ws) const;

  /// Actual element applies per cycle: sum_k p_k * |E(k)| (includes halo).
  [[nodiscard]] std::int64_t applies_per_cycle() const;
};

LtsStructure build_lts_structure(const sem::SemSpace& space, const LevelAssignment& levels);

} // namespace ltswave::core
