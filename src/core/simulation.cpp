#include "core/simulation.hpp"

#include <cmath>
#include <sstream>

#include "common/kv.hpp"
#include "core/executor.hpp"
#include "core/integrator.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/error.hpp"
#include "resilience/health_guard.hpp"
#include "runtime/threaded_lts.hpp"

namespace ltswave::core {

std::string to_string(Physics p) {
  switch (p) {
    case Physics::Acoustic: return "acoustic";
    case Physics::Elastic: return "elastic";
  }
  return "unknown";
}

Physics parse_physics(std::string_view name) {
  if (name == "acoustic") return Physics::Acoustic;
  if (name == "elastic") return Physics::Elastic;
  LTS_CHECK_MSG(false, "unknown physics '" << name << "' (want acoustic | elastic)");
  return Physics::Acoustic;
}

std::string to_string(const SimulationConfig& cfg) {
  std::ostringstream os;
  os << "order=" << cfg.order << " physics=" << to_string(cfg.physics)
     << " courant=" << kv::format_real(cfg.courant) << " lts=" << (cfg.use_lts ? "on" : "off")
     << " max-levels=" << cfg.max_levels << " ranks=" << cfg.num_ranks
     << " partitioner=" << partition::cli_name(cfg.partitioner)
     << " feedback=" << cfg.feedback_warmup_cycles
     << " executor=" << (cfg.executor.empty() ? "auto" : cfg.executor)
     << " scheduler.mode=" << runtime::to_string(cfg.scheduler.mode)
     << " scheduler.oversubscribe=" << runtime::to_string(cfg.scheduler.oversubscribe)
     << " scheduler.chunk=" << cfg.scheduler.chunk_elems;
  // Opt-in keys print only when set, so configs that never touch them keep
  // the exact historical string (pinned in docs and reports). Defaults apply
  // to omitted keys on parse, so the round-trip guarantee holds either way.
  if (!cfg.integrator.empty()) os << " integrator=" << cfg.integrator;
  if (cfg.scheduler.watchdog_seconds != 0)
    os << " scheduler.watchdog=" << kv::format_real(cfg.scheduler.watchdog_seconds);
  if (cfg.health_every != 0) os << " health-every=" << cfg.health_every;
  if (cfg.fault != resilience::FaultPlan{})
    os << " fault.kind=" << resilience::to_string(cfg.fault.kind)
       << " fault.cycle=" << cfg.fault.cycle << " fault.rank=" << cfg.fault.rank
       << " fault.stall-ms=" << kv::format_real(cfg.fault.stall_ms)
       << " fault.seed=" << cfg.fault.seed;
  return os.str();
}

bool try_simulation_config_key(SimulationConfig& cfg, std::string_view key,
                               std::string_view value) {
  if (key == "order") {
    cfg.order = kv::parse_int_as<int>(key, value);
  } else if (key == "physics") {
    cfg.physics = parse_physics(value);
  } else if (key == "courant") {
    cfg.courant = kv::parse_real(key, value);
  } else if (key == "lts") {
    cfg.use_lts = kv::parse_bool(key, value);
  } else if (key == "max-levels") {
    cfg.max_levels = kv::parse_int_as<level_t>(key, value);
  } else if (key == "ranks") {
    cfg.num_ranks = kv::parse_int_as<rank_t>(key, value);
  } else if (key == "partitioner") {
    cfg.partitioner = partition::parse_strategy(value);
  } else if (key == "feedback") {
    cfg.feedback_warmup_cycles = kv::parse_int_as<int>(key, value);
  } else if (key == "executor") {
    cfg.executor = value == "auto" ? std::string{} : value;
  } else if (key == "integrator") {
    // Validate and canonicalize eagerly: a typo should fail at parse time,
    // and aliases ("stabilized-leapfrog") should not leak into checkpoints.
    cfg.integrator = std::string(Integrator::parse(value).name());
  } else if (key == "scheduler" || key == "scheduler.mode") {
    cfg.scheduler.mode = runtime::parse_scheduler_mode_or_throw(value);
  } else if (key == "oversubscribe" || key == "scheduler.oversubscribe") {
    cfg.scheduler.oversubscribe = runtime::parse_oversubscribe(value);
  } else if (key == "chunk" || key == "scheduler.chunk") {
    cfg.scheduler.chunk_elems = kv::parse_int_as<index_t>(key, value);
  } else if (key == "watchdog" || key == "scheduler.watchdog") {
    cfg.scheduler.watchdog_seconds = kv::parse_real(key, value);
    LTS_CHECK_MSG(cfg.scheduler.watchdog_seconds >= 0,
                  "watchdog wants a timeout in seconds >= 0 (0 = off), got '" << value << "'");
  } else if (key == "health-every") {
    cfg.health_every = kv::parse_int_as<std::int64_t>(key, value);
    LTS_CHECK_MSG(cfg.health_every >= -1,
                  "health-every wants -1 (off), 0 (per run() call) or a cycle stride, got '"
                      << value << "'");
  } else if (key == "fault.kind") {
    cfg.fault.kind = resilience::parse_fault_kind(value);
  } else if (key == "fault.cycle") {
    cfg.fault.cycle = kv::parse_int_as<std::int64_t>(key, value);
  } else if (key == "fault.rank") {
    cfg.fault.rank = kv::parse_int_as<int>(key, value);
  } else if (key == "fault.stall-ms") {
    cfg.fault.stall_ms = kv::parse_real(key, value);
  } else if (key == "fault.seed") {
    cfg.fault.seed = static_cast<std::uint64_t>(kv::parse_int_as<std::int64_t>(key, value));
  } else {
    return false;
  }
  return true;
}

std::string_view simulation_config_keys_help() {
  return "order | physics | courant | lts | max-levels | ranks | partitioner | feedback | "
         "executor | integrator | scheduler[.mode] | [scheduler.]oversubscribe | "
         "[scheduler.]chunk | "
         "[scheduler.]watchdog | health-every | "
         "fault.{kind,cycle,rank,stall-ms,seed}";
}

SimulationConfig parse_simulation_config(std::string_view text) {
  SimulationConfig cfg;
  for (const auto& [key, value] : kv::split(text))
    LTS_CHECK_MSG(try_simulation_config_key(cfg, key, value),
                  "unknown simulation config key '" << key << "' (want "
                                                    << simulation_config_keys_help() << ")");
  return cfg;
}

WaveSimulation::WaveSimulation(mesh::HexMesh mesh, SimulationConfig cfg)
    : cfg_(std::move(cfg)), mesh_(std::move(mesh)) {
  auto& factory = ExecutorFactory::instance();
  executor_name_ = resolve_executor_name(cfg_);

  space_ = std::make_unique<sem::SemSpace>(mesh_, cfg_.order);
  if (cfg_.physics == Physics::Acoustic)
    op_ = std::make_unique<sem::AcousticOperator>(*space_);
  else
    op_ = std::make_unique<sem::ElasticOperator>(*space_);

  // The backend decides the level layout: LTS backends get the real
  // multi-level assignment, single-rate reference schemes ("newmark") run at
  // the global CFL minimum. Under the legacy shim (no explicit executor) the
  // old `use_lts` field keeps deciding, so pre-existing call sites like
  // {use_lts=false, num_ranks=4} — a threaded run at the global minimum step
  // — behave exactly as before the Executor seam.
  const bool multi_level = cfg_.executor.empty() ? cfg_.use_lts
                                                 : factory.uses_lts_levels(executor_name_);
  levels_ = multi_level ? assign_levels(mesh_, cfg_.courant, cfg_.max_levels)
                        : assign_single_level(mesh_, cfg_.courant);
  structure_ = build_lts_structure(*space_, levels_);

  ExecutorContext ctx;
  ctx.op = op_.get();
  ctx.levels = &levels_;
  ctx.structure = &structure_;
  ctx.mesh = &mesh_;
  ctx.space = space_.get();
  ctx.cfg = &cfg_;
  executor_ = factory.create(executor_name_, ctx);

  if (cfg_.health_every >= 0) guard_ = std::make_unique<resilience::HealthGuard>(*space_);
}

WaveSimulation::~WaveSimulation() = default;

real_t WaveSimulation::dt() const noexcept { return levels_.dt; }

real_t WaveSimulation::time() const noexcept { return executor_->time(); }

void WaveSimulation::add_source(std::array<real_t, 3> location, real_t peak_frequency,
                                std::array<real_t, 3> direction, real_t amplitude) {
  executor_->add_source(
      sem::PointSource::at(*space_, location, peak_frequency, direction, amplitude));
}

void WaveSimulation::add_receiver(std::array<real_t, 3> location, int component) {
  // Register with the backend first: if it rejects the receiver (bad
  // component for this physics), the facade list must not keep a phantom
  // entry that desyncs drain_receivers later.
  sem::Receiver rec(*space_, location, component);
  executor_->add_receiver(rec.node(), component);
  receivers_.push_back(std::move(rec));
}

void WaveSimulation::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  executor_->set_state(u0, v0);
}

const std::vector<real_t>& WaveSimulation::u() const { return executor_->state(); }

std::int64_t WaveSimulation::element_applies() const { return executor_->element_applies(); }

std::int64_t WaveSimulation::blocks_applied() const { return executor_->blocks_applied(); }

perf::RunReport WaveSimulation::run_report() const {
  perf::RunReport r = executor_->run_report();
  r.config = to_string(cfg_);
  return r;
}

const runtime::ThreadedLtsSolver* WaveSimulation::threaded() const noexcept {
  return executor_->threaded_solver();
}

runtime::ThreadedLtsSolver* WaveSimulation::threaded() noexcept {
  return executor_->threaded_solver();
}

const partition::Partition& WaveSimulation::part() const noexcept {
  static const partition::Partition kEmpty{};
  const auto* p = executor_->partition();
  return p ? *p : kEmpty;
}

void WaveSimulation::refine_partition_from_feedback() {
  LTS_CHECK_MSG(executor_->supports_feedback(),
                "feedback repartitioning needs a rank-parallel executor (num_ranks > 1); '"
                    << executor_name_ << "' is not one");
  executor_->refine_from_feedback();
  feedback_applied_ = true;
}

void WaveSimulation::advance(std::int64_t cycles, const std::function<void(real_t)>& on_step) {
  if (cycles <= 0) return;
  if (on_step) {
    for (std::int64_t s = 0; s < cycles; ++s) {
      executor_->advance_cycles(1);
      // Drain per cycle so the callback sees receiver traces grow as the run
      // progresses (draining clears the backend's copy, so the final drain in
      // run() never double-appends).
      executor_->drain_receivers(receivers_);
      on_step(time());
    }
  } else {
    // One backend dispatch for the whole span: receivers sample inside the
    // backend, so there is no reason to return to the caller every cycle.
    executor_->advance_cycles(cycles);
  }
}

std::int64_t WaveSimulation::run(real_t duration, const std::function<void(real_t)>& on_step) {
  const auto steps = static_cast<std::int64_t>(std::ceil(duration / dt() - 1e-12));
  std::int64_t remaining = steps;
  if (cfg_.feedback_warmup_cycles > 0 && !feedback_applied_ && executor_->supports_feedback()) {
    const auto warm = std::min<std::int64_t>(cfg_.feedback_warmup_cycles, remaining);
    advance(warm, on_step);
    remaining -= warm;
    // Repartition only when warm-up cycles actually executed: a zero-length
    // run() must not consume the one-shot feedback budget on empty counters
    // (a neutral-factor repartition would replace the initial partition with
    // an unmeasured one).
    if (warm > 0) refine_partition_from_feedback();
  }
  if (guard_ && cfg_.health_every > 0) {
    // Chunked advance: a blow-up is caught within health_every cycles of
    // where it started, keeping the rollback window (and any checkpoint
    // cadence layered on top) tight.
    while (remaining > 0) {
      const auto chunk = std::min<std::int64_t>(cfg_.health_every, remaining);
      advance(chunk, on_step);
      remaining -= chunk;
      guard_->check(*executor_);
    }
  } else {
    advance(remaining, on_step);
    if (guard_) guard_->check(*executor_);
  }
  executor_->drain_receivers(receivers_);
  return steps;
}

resilience::Checkpoint WaveSimulation::checkpoint() {
  // Fold any backend-buffered receiver samples into the facade history first:
  // the snapshot's trace arrays must be the complete record up to time().
  executor_->drain_receivers(receivers_);
  resilience::Checkpoint ck;
  ck.executor = executor_name_;
  ck.config = to_string(cfg_);
  ck.state = executor_->export_state();
  ck.traces.reserve(receivers_.size());
  for (const auto& rec : receivers_) ck.traces.push_back({rec.times(), rec.values()});
  return ck;
}

void WaveSimulation::restore(const resilience::Checkpoint& ck, bool allow_dt_change) {
  if (ck.traces.size() != receivers_.size())
    LTS_RAISE(resilience::CheckpointMismatch,
              "checkpoint carries " << ck.traces.size() << " receiver traces, simulation has "
                                    << receivers_.size()
                                    << " receivers — rebuild the facade from the same scenario "
                                       "before restoring");
  if (!allow_dt_change && std::abs(dt() - ck.state.dt) > real_t(1e-12) * dt())
    LTS_RAISE(resilience::CheckpointMismatch,
              "checkpoint was written at dt=" << ck.state.dt << ", this simulation runs dt="
                                              << dt()
                                              << " (pass allow_dt_change for deliberate "
                                                 "dt-changing restores, e.g. halve_dt recovery)");
  // Cross-backend restores are fine; cross-*integrator* ones are not — the
  // staggered (u, v^{t-dt/2}) pair means something different under each
  // substep rule, so a silent swap would corrupt the physics.
  if (Integrator::parse(ck.state.integrator) != Integrator::parse(cfg_.integrator))
    LTS_RAISE(resilience::CheckpointMismatch,
              "checkpoint was written by integrator '"
                  << Integrator::parse(ck.state.integrator).name()
                  << "', this simulation runs '" << Integrator::parse(cfg_.integrator).name()
                  << "' — rebuild with the matching integrator= key");
  executor_->import_state(ck.state);
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    receivers_[i].reset_samples();
    const auto& t = ck.traces[i];
    for (std::size_t s = 0; s < t.times.size(); ++s) receivers_[i].append(t.times[s], t.values[s]);
  }
  if (guard_) guard_->reset();
}

std::int64_t WaveSimulation::cycles() const { return executor_->cycles(); }

} // namespace ltswave::core
