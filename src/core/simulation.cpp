#include "core/simulation.hpp"

#include <cmath>

#include "runtime/threaded_lts.hpp"

namespace ltswave::core {

WaveSimulation::WaveSimulation(mesh::HexMesh mesh, SimulationConfig cfg)
    : cfg_(cfg), mesh_(std::move(mesh)) {
  space_ = std::make_unique<sem::SemSpace>(mesh_, cfg.order);
  if (cfg.physics == Physics::Acoustic)
    op_ = std::make_unique<sem::AcousticOperator>(*space_);
  else
    op_ = std::make_unique<sem::ElasticOperator>(*space_);

  levels_ = cfg.use_lts ? assign_levels(mesh_, cfg.courant, cfg.max_levels)
                        : assign_single_level(mesh_, cfg.courant);
  structure_ = build_lts_structure(*space_, levels_);

  if (cfg.num_ranks > 1) {
    partition::PartitionerConfig pc;
    pc.strategy = cfg.partitioner;
    pc.num_parts = cfg.num_ranks;
    part_ = partition::partition_mesh(mesh_, levels_.elem_level, levels_.num_levels, pc);
    threaded_solver_ = std::make_unique<runtime::ThreadedLtsSolver>(*op_, levels_, structure_,
                                                                    part_, cfg.scheduler);
  } else if (cfg.use_lts) {
    lts_solver_ = std::make_unique<LtsNewmarkSolver>(*op_, levels_, structure_);
  } else {
    newmark_solver_ = std::make_unique<NewmarkSolver>(*op_, levels_.dt);
  }
}

WaveSimulation::~WaveSimulation() = default;

real_t WaveSimulation::dt() const noexcept { return levels_.dt; }

real_t WaveSimulation::time() const noexcept {
  if (threaded_solver_) return threaded_solver_->time();
  return lts_solver_ ? lts_solver_->time() : newmark_solver_->time();
}

void WaveSimulation::add_source(std::array<real_t, 3> location, real_t peak_frequency,
                                std::array<real_t, 3> direction, real_t amplitude) {
  LTS_CHECK_MSG(!threaded_solver_,
                "point sources are not supported by the threaded runtime yet — "
                "run with num_ranks <= 1 to use sources");
  const auto src = sem::PointSource::at(*space_, location, peak_frequency, direction, amplitude);
  if (lts_solver_)
    lts_solver_->add_source(src);
  else
    newmark_solver_->add_source(src);
}

void WaveSimulation::add_receiver(std::array<real_t, 3> location, int component) {
  receivers_.emplace_back(*space_, location, component);
}

void WaveSimulation::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  if (threaded_solver_)
    threaded_solver_->set_state(u0, v0);
  else if (lts_solver_)
    lts_solver_->set_state(u0, v0);
  else
    newmark_solver_->set_state(u0, v0);
}

const std::vector<real_t>& WaveSimulation::u() const {
  if (threaded_solver_) return threaded_solver_->u();
  return lts_solver_ ? lts_solver_->u() : newmark_solver_->u();
}

std::int64_t WaveSimulation::element_applies() const {
  if (threaded_solver_) {
    // Derived from the solver's own clock so driving the executor directly
    // through threaded() stays consistent with the facade.
    const auto cycles =
        static_cast<std::int64_t>(std::llround(threaded_solver_->time() / levels_.dt));
    return cycles * structure_.applies_per_cycle();
  }
  return lts_solver_ ? lts_solver_->element_applies() : newmark_solver_->element_applies();
}

std::int64_t WaveSimulation::run(real_t duration, const std::function<void(real_t)>& on_step) {
  const auto steps = static_cast<std::int64_t>(std::ceil(duration / dt() - 1e-12));
  for (std::int64_t s = 0; s < steps; ++s) {
    if (threaded_solver_) {
      threaded_solver_->run_cycles(1);
    } else if (lts_solver_) {
      lts_solver_->step();
    } else {
      newmark_solver_->step();
    }
    const real_t t = time();
    const auto& uu = u();
    for (auto& r : receivers_) r.sample(t, uu.data(), ncomp());
    if (on_step) on_step(t);
  }
  return steps;
}

} // namespace ltswave::core
