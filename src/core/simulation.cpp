#include "core/simulation.hpp"

#include <cmath>

namespace ltswave::core {

WaveSimulation::WaveSimulation(const mesh::HexMesh& mesh, SimulationConfig cfg)
    : cfg_(cfg) {
  space_ = std::make_unique<sem::SemSpace>(mesh, cfg.order);
  if (cfg.physics == Physics::Acoustic)
    op_ = std::make_unique<sem::AcousticOperator>(*space_);
  else
    op_ = std::make_unique<sem::ElasticOperator>(*space_);

  levels_ = cfg.use_lts ? assign_levels(mesh, cfg.courant, cfg.max_levels)
                        : assign_single_level(mesh, cfg.courant);
  structure_ = build_lts_structure(*space_, levels_);

  if (cfg.use_lts)
    lts_solver_ = std::make_unique<LtsNewmarkSolver>(*op_, levels_, structure_);
  else
    newmark_solver_ = std::make_unique<NewmarkSolver>(*op_, levels_.dt);
}

real_t WaveSimulation::dt() const noexcept { return levels_.dt; }

real_t WaveSimulation::time() const noexcept {
  return lts_solver_ ? lts_solver_->time() : newmark_solver_->time();
}

void WaveSimulation::add_source(std::array<real_t, 3> location, real_t peak_frequency,
                                std::array<real_t, 3> direction, real_t amplitude) {
  const auto src = sem::PointSource::at(*space_, location, peak_frequency, direction, amplitude);
  if (lts_solver_)
    lts_solver_->add_source(src);
  else
    newmark_solver_->add_source(src);
}

void WaveSimulation::add_receiver(std::array<real_t, 3> location, int component) {
  receivers_.emplace_back(*space_, location, component);
}

void WaveSimulation::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  if (lts_solver_)
    lts_solver_->set_state(u0, v0);
  else
    newmark_solver_->set_state(u0, v0);
}

const std::vector<real_t>& WaveSimulation::u() const {
  return lts_solver_ ? lts_solver_->u() : newmark_solver_->u();
}

std::int64_t WaveSimulation::element_applies() const {
  return lts_solver_ ? lts_solver_->element_applies() : newmark_solver_->element_applies();
}

std::int64_t WaveSimulation::run(real_t duration, const std::function<void(real_t)>& on_step) {
  const auto steps = static_cast<std::int64_t>(std::ceil(duration / dt() - 1e-12));
  for (std::int64_t s = 0; s < steps; ++s) {
    if (lts_solver_)
      lts_solver_->step();
    else
      newmark_solver_->step();
    const real_t t = time();
    const auto& uu = u();
    for (auto& r : receivers_) r.sample(t, uu.data(), ncomp());
    if (on_step) on_step(t);
  }
  return steps;
}

} // namespace ltswave::core
