#include "core/simulation.hpp"

#include <cmath>

#include "partition/feedback.hpp"
#include "runtime/threaded_lts.hpp"

namespace ltswave::core {

WaveSimulation::WaveSimulation(mesh::HexMesh mesh, SimulationConfig cfg)
    : cfg_(cfg), mesh_(std::move(mesh)) {
  space_ = std::make_unique<sem::SemSpace>(mesh_, cfg.order);
  if (cfg.physics == Physics::Acoustic)
    op_ = std::make_unique<sem::AcousticOperator>(*space_);
  else
    op_ = std::make_unique<sem::ElasticOperator>(*space_);

  levels_ = cfg.use_lts ? assign_levels(mesh_, cfg.courant, cfg.max_levels)
                        : assign_single_level(mesh_, cfg.courant);
  structure_ = build_lts_structure(*space_, levels_);

  if (cfg.num_ranks > 1) {
    partition::PartitionerConfig pc;
    pc.strategy = cfg.partitioner;
    pc.num_parts = cfg.num_ranks;
    part_ = partition::partition_mesh(mesh_, levels_.elem_level, levels_.num_levels, pc);
    threaded_solver_ = std::make_unique<runtime::ThreadedLtsSolver>(*op_, levels_, structure_,
                                                                    part_, cfg.scheduler);
  } else if (cfg.use_lts) {
    lts_solver_ = std::make_unique<LtsNewmarkSolver>(*op_, levels_, structure_);
  } else {
    newmark_solver_ = std::make_unique<NewmarkSolver>(*op_, levels_.dt);
  }
}

WaveSimulation::~WaveSimulation() = default;

real_t WaveSimulation::dt() const noexcept { return levels_.dt; }

real_t WaveSimulation::time() const noexcept {
  if (threaded_solver_) return threaded_solver_->time();
  return lts_solver_ ? lts_solver_->time() : newmark_solver_->time();
}

void WaveSimulation::add_source(std::array<real_t, 3> location, real_t peak_frequency,
                                std::array<real_t, 3> direction, real_t amplitude) {
  const auto src = sem::PointSource::at(*space_, location, peak_frequency, direction, amplitude);
  if (threaded_solver_)
    threaded_solver_->add_source(src);
  else if (lts_solver_)
    lts_solver_->add_source(src);
  else
    newmark_solver_->add_source(src);
}

void WaveSimulation::add_receiver(std::array<real_t, 3> location, int component) {
  receivers_.emplace_back(*space_, location, component);
  // The threaded runtime samples per rank at every cycle boundary; run()
  // drains the runtime traces back into this facade-level receiver.
  if (threaded_solver_) threaded_solver_->add_receiver(receivers_.back().node(), component);
}

void WaveSimulation::set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
  if (threaded_solver_)
    threaded_solver_->set_state(u0, v0);
  else if (lts_solver_)
    lts_solver_->set_state(u0, v0);
  else
    newmark_solver_->set_state(u0, v0);
}

const std::vector<real_t>& WaveSimulation::u() const {
  if (threaded_solver_) return threaded_solver_->u();
  return lts_solver_ ? lts_solver_->u() : newmark_solver_->u();
}

std::int64_t WaveSimulation::element_applies() const {
  // The threaded solver derives this from its integer cycle counter
  // (cycles_done * applies_per_cycle) — no llround(time/dt) drift, however
  // the run was split across run_cycles calls.
  if (threaded_solver_) return threaded_solver_->element_applies();
  return lts_solver_ ? lts_solver_->element_applies() : newmark_solver_->element_applies();
}

void WaveSimulation::refine_partition_from_feedback() {
  LTS_CHECK_MSG(threaded_solver_, "feedback repartitioning needs num_ranks > 1");
  partition::FeedbackSignal sig;
  sig.busy_seconds = threaded_solver_->busy_seconds();
  sig.stall_seconds = threaded_solver_->stall_seconds();
  sig.steal_counts = threaded_solver_->steal_counts();

  partition::PartitionerConfig pc;
  pc.strategy = cfg_.partitioner;
  pc.num_parts = cfg_.num_ranks;
  part_ = partition::refine_with_feedback(mesh_, levels_.elem_level, levels_.num_levels, part_,
                                          sig, pc);
  auto fresh = std::make_unique<runtime::ThreadedLtsSolver>(*op_, levels_, structure_, part_,
                                                            cfg_.scheduler);
  fresh->adopt_state_from(*threaded_solver_);
  threaded_solver_ = std::move(fresh);
  feedback_applied_ = true;
}

void WaveSimulation::run_threaded_cycles(std::int64_t cycles,
                                         const std::function<void(real_t)>& on_step) {
  if (cycles <= 0) return;
  if (on_step) {
    for (std::int64_t s = 0; s < cycles; ++s) {
      threaded_solver_->run_cycles(1);
      on_step(time());
    }
  } else {
    // One pool dispatch for the whole span: receivers sample inside the
    // runtime, so there is no reason to wake the main thread every cycle.
    threaded_solver_->run_cycles(static_cast<int>(cycles));
  }
}

void WaveSimulation::drain_threaded_receivers() {
  auto& traces = threaded_solver_->traces();
  LTS_CHECK(traces.size() == receivers_.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t s = 0; s < traces[i].times.size(); ++s)
      receivers_[i].append(traces[i].times[s], traces[i].values[s]);
    traces[i].times.clear();
    traces[i].values.clear();
  }
}

std::int64_t WaveSimulation::run(real_t duration, const std::function<void(real_t)>& on_step) {
  const auto steps = static_cast<std::int64_t>(std::ceil(duration / dt() - 1e-12));
  if (threaded_solver_) {
    std::int64_t remaining = steps;
    if (cfg_.feedback_warmup_cycles > 0 && !feedback_applied_) {
      const auto warm = std::min<std::int64_t>(cfg_.feedback_warmup_cycles, remaining);
      run_threaded_cycles(warm, on_step);
      remaining -= warm;
      // Repartition only when warm-up cycles actually executed: a zero-length
      // run() must not consume the one-shot feedback budget on empty
      // counters (a neutral-factor repartition would replace the initial
      // partition with an unmeasured one).
      if (warm > 0) refine_partition_from_feedback();
    }
    run_threaded_cycles(remaining, on_step);
    drain_threaded_receivers();
    return steps;
  }
  for (std::int64_t s = 0; s < steps; ++s) {
    if (lts_solver_)
      lts_solver_->step();
    else
      newmark_solver_->step();
    const real_t t = time();
    const auto& uu = u();
    for (auto& r : receivers_) r.sample(t, uu.data(), ncomp());
    if (on_step) on_step(t);
  }
  return steps;
}

} // namespace ltswave::core
