#include "core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#include "common/timer.hpp"
#include "core/integrator.hpp"
#include "core/lts_newmark.hpp"
#include "core/simulation.hpp"
#include "partition/feedback.hpp"
#include "partition/partitioners.hpp"
#include "perf/roofline.hpp"
#include "resilience/error.hpp"
#include "resilience/fault.hpp"
#include "runtime/threaded_lts.hpp"

namespace ltswave::core {

namespace {

/// The integrator the simulation config asks for (default Newmark when no
/// config rides in the context — the standalone-solver construction path).
Integrator integrator_for(const ExecutorContext& ctx) {
  return ctx.cfg ? Integrator::parse(ctx.cfg->integrator) : Integrator::newmark();
}

/// Per-receiver trace accumulated by the serial adapters (the threaded
/// backend keeps equivalent traces inside the solver, per owning rank).
struct SerialTrace {
  std::vector<real_t> times;
  std::vector<real_t> values;
};

/// Appends every accumulated (time, value) sample into the matching sink and
/// clears the trace — the one drain semantic shared by all backends. Works on
/// any trace type exposing times/values vectors.
template <typename Traces>
void drain_traces(Traces& traces, std::span<sem::Receiver> sinks) {
  LTS_CHECK(sinks.size() == traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t s = 0; s < traces[i].times.size(); ++s)
      sinks[i].append(traces[i].times[s], traces[i].values[s]);
    traces[i].times.clear();
    traces[i].values.clear();
  }
}

/// Shared implementation of the two serial adapters: both drive a solver with
/// the same set_state/step/u/add_source surface, sample receivers at every
/// cycle boundary from the solver's global displacement vector, and drain
/// traces identically. Only adopt_raw_state differs in arity, so subclasses
/// implement just the adopt hand-off.
template <typename Solver>
class SerialExecutorBase : public Executor {
public:
  [[nodiscard]] real_t time() const override { return solver_->time(); }
  [[nodiscard]] std::int64_t element_applies() const override { return solver_->element_applies(); }
  [[nodiscard]] std::int64_t blocks_applied() const override { return solver_->blocks_applied(); }
  [[nodiscard]] std::span<const real_t> v_half() const override { return solver_->v_half(); }
  [[nodiscard]] std::int64_t cycles() const override { return cycles_; }

  /// Serial backends have no ranks (the vectors stay empty) but do run the
  /// batched path, so the block counter is populated.
  [[nodiscard]] ExecutorCounters counters() const override {
    ExecutorCounters c;
    c.blocks_applied = solver_->blocks_applied();
    return c;
  }

  void drain_receivers(std::span<sem::Receiver> sinks) override { drain_traces(traces_, sinks); }

protected:
  SerialExecutorBase(std::string name, const ExecutorContext& ctx, std::unique_ptr<Solver> solver)
      : Executor(std::move(name)), ncomp_(ctx.op->ncomp()), solver_(std::move(solver)) {
    if (ctx.cfg) fault_ = ctx.cfg->fault;
  }

  void do_set_state(std::span<const real_t> u0, std::span<const real_t> v0) override {
    solver_->set_state(u0, v0);
  }
  void do_advance_cycles(std::int64_t cycles) override {
    for (std::int64_t s = 0; s < cycles; ++s) {
      maybe_inject_fault_pre();
      solver_->step();
      maybe_inject_fault_post();
      if (!traces_.empty()) {
        const WallTimer timer;
        sample_receivers();
        receivers_seconds_ += timer.seconds();
        ++receivers_count_;
      }
      ++cycles_;
    }
  }
  const std::vector<real_t>* direct_state() const override { return &solver_->u(); }
  void gather_state(std::vector<real_t>& out) const override { out = solver_->u(); }
  void do_add_source(const sem::PointSource& src) override { solver_->add_source(src); }
  void do_add_receiver(gindex_t node, int component) override {
    // Same loud rejection the threaded backend gives — an acoustic run with a
    // component=2 receiver must not silently sample the wrong DOF.
    LTS_CHECK_MSG(component >= 0 && component < ncomp_,
                  "receiver component " << component << " out of range for ncomp " << ncomp_);
    LTS_CHECK_MSG(node >= 0 && (static_cast<std::size_t>(node) + 1) *
                                       static_cast<std::size_t>(ncomp_) <=
                                   solver_->u().size(),
                  "receiver node " << node << " outside the global node range");
    traces_.emplace_back();
  }

  /// Throw-faults fire on the step boundary *before* the addressed cycle runs
  /// (matching the threaded driver-thread semantics); nan/stall fire after it
  /// completes, mirroring the threaded rank's cycle-final update injection.
  void maybe_inject_fault_pre() {
    using Kind = resilience::FaultPlan::Kind;
    if (fault_.kind != Kind::Throw || !fault_.armed() || fault_fired_) return;
    if (cycles_ != fault_.cycle) return;
    fault_fired_ = true;
    record_event({"fault-injected", "", cycles_, "fault.kind=throw"});
    LTS_RAISE(resilience::Error, "injected failure (fault.kind=throw) at cycle " << cycles_);
  }
  void maybe_inject_fault_post() {
    using Kind = resilience::FaultPlan::Kind;
    if (fault_.kind != Kind::Nan && fault_.kind != Kind::Stall) return;
    if (!fault_.armed() || fault_fired_ || cycles_ != fault_.cycle) return;
    fault_fired_ = true;
    if (fault_.kind == Kind::Stall) {
      record_event({"fault-injected", "", cycles_, "fault.kind=stall"});
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(fault_.stall_ms));
      return;
    }
    auto& u = solver_->u();
    if (u.empty()) return;
    const std::size_t node = resilience::fault_pick(fault_.seed, u.size() /
                                                                     static_cast<std::size_t>(ncomp_));
    for (int c = 0; c < ncomp_; ++c)
      u[node * static_cast<std::size_t>(ncomp_) + static_cast<std::size_t>(c)] =
          std::numeric_limits<real_t>::quiet_NaN();
    record_event({"fault-injected", "", cycles_, "fault.kind=nan"});
  }

  [[nodiscard]] ExecutorState do_export_state() const override {
    ExecutorState s;
    s.u = solver_->u();
    s.v_half = solver_->v_half();
    s.time = solver_->time();
    s.dt = solver_->dt();
    s.cycles = cycles_;
    s.element_applies = solver_->element_applies();
    s.blocks_applied = solver_->blocks_applied();
    export_extra(s);
    return s;
  }

  void do_import_state(const ExecutorState& s) override {
    if (s.u.size() != solver_->u().size() || s.v_half.size() != s.u.size())
      LTS_RAISE(resilience::CheckpointMismatch,
                "checkpoint state has " << s.u.size() << " dofs but executor '" << name()
                                        << "' expects " << solver_->u().size());
    import_raw(s);
    cycles_ = s.cycles;
    // Undrained internal traces belong to the pre-restore timeline.
    for (auto& t : traces_) {
      t.times.clear();
      t.values.clear();
    }
  }

  /// LTS subclasses append applies_per_level and the frozen accumulators.
  virtual void export_extra(ExecutorState& /*s*/) const {}
  virtual void import_raw(const ExecutorState& s) = 0;

  /// The same-kind downcast + source replay every adopt starts with.
  template <typename Self>
  const Self& adopt_prologue(const Executor& prev) {
    const auto* p = dynamic_cast<const Self*>(&prev);
    LTS_CHECK_MSG(p, "executor '" << name() << "' cannot adopt state from '" << prev.name()
                                  << "' — backends hand off within their own kind");
    for (const auto& s : prev.sources()) solver_->add_source(s);
    traces_ = p->traces_;
    cycles_ = p->cycles_;
    receivers_seconds_ = p->receivers_seconds_;
    receivers_count_ = p->receivers_count_;
    return *p;
  }

  /// Serial backends report the solver's phase accumulators plus the
  /// adapter-level receiver-sampling time, and a static roofline for the
  /// batched plan the solver actually runs.
  void fill_report(perf::RunReport& r) const override {
    r.cycles = cycles_;
    solver_->fill_phases(r);
    if (!traces_.empty()) r.add_phase("receivers", receivers_seconds_, receivers_count_);
    if constexpr (requires { solver_->plan(); })
      r.roofline = perf::roofline_for_plan(solver_->plan());
    else
      r.roofline = perf::roofline_for_plan(solver_->op().full_plan());
  }

  int ncomp_;
  std::unique_ptr<Solver> solver_;
  std::vector<SerialTrace> traces_;
  std::int64_t cycles_ = 0;
  double receivers_seconds_ = 0;
  std::int64_t receivers_count_ = 0;
  resilience::FaultPlan fault_; ///< from ctx.cfg->fault; one-shot per instance
  bool fault_fired_ = false;

private:
  void sample_receivers() {
    const auto recs = receivers();
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const std::size_t dof = static_cast<std::size_t>(recs[i].node) *
                                  static_cast<std::size_t>(ncomp_) +
                              static_cast<std::size_t>(recs[i].component);
      traces_[i].times.push_back(solver_->time());
      traces_[i].values.push_back(solver_->u()[dof]);
    }
  }
};

/// Global explicit Newmark at Delta-t_min — the non-LTS reference scheme.
class NewmarkExecutor final : public SerialExecutorBase<NewmarkSolver> {
public:
  NewmarkExecutor(std::string name, const ExecutorContext& ctx)
      : SerialExecutorBase(std::move(name), ctx,
                           std::make_unique<NewmarkSolver>(*ctx.op, ctx.levels->dt)) {
    // A multi-level census means levels->dt is the *coarse* step — stepping
    // the whole mesh at it violates CFL on the fine elements and blows up
    // without a diagnostic. Callers must build the context with
    // assign_single_level (consult ExecutorFactory::uses_lts_levels, as the
    // facade does).
    LTS_CHECK_MSG(ctx.levels->num_levels == 1,
                  "executor '" << this->name() << "' needs a single-level census (got "
                               << ctx.levels->num_levels
                               << " levels) — build levels with assign_single_level");
    // The stabilized substep rule only exists inside the LTS recursion; the
    // single-level reference scheme IS plain Newmark, so any other request is
    // a configuration error rather than something to silently ignore.
    LTS_CHECK_MSG(integrator_for(ctx).kind() == IntegratorKind::Newmark,
                  "executor '" << this->name() << "' only runs integrator=newmark (got '"
                               << ctx.cfg->integrator << "') — pick an LTS backend");
  }

private:
  void do_adopt_state_from(const Executor& prev) override {
    const auto& p = adopt_prologue<NewmarkExecutor>(prev);
    solver_->adopt_raw_state(p.solver_->u(), p.solver_->v_half(), p.solver_->time(),
                             p.solver_->element_applies(), p.solver_->blocks_applied());
  }
  void import_raw(const ExecutorState& s) override {
    solver_->adopt_raw_state(s.u, s.v_half, s.time, s.element_applies, s.blocks_applied);
  }
};

/// The production serial multi-level LTS-Newmark scheme — the baseline every
/// other backend is conformance-tested against.
class SerialLtsExecutor final : public SerialExecutorBase<LtsNewmarkSolver> {
public:
  SerialLtsExecutor(std::string name, const ExecutorContext& ctx)
      : SerialExecutorBase(std::move(name), ctx,
                           std::make_unique<LtsNewmarkSolver>(*ctx.op, *ctx.levels,
                                                              *ctx.structure,
                                                              integrator_for(ctx))) {}

private:
  void do_adopt_state_from(const Executor& prev) override {
    const auto& p = adopt_prologue<SerialLtsExecutor>(prev);
    solver_->adopt_raw_state(p.solver_->u(), p.solver_->v_half(), p.solver_->time(),
                             p.solver_->element_applies(), p.solver_->applies_per_level(),
                             p.solver_->blocks_applied());
  }
  void export_extra(ExecutorState& s) const override {
    s.integrator = std::string(solver_->integrator().name());
    s.integrator_aux = solver_->integrator().aux_state();
    s.applies_per_level = solver_->applies_per_level();
    s.frozen_forces = solver_->frozen_forces();
    s.cumulative = solver_->cumulative();
  }
  void import_raw(const ExecutorState& s) override {
    // A cross-backend checkpoint may carry a different level split; per-level
    // work attribution is then unknowable, so it restarts at zero while the
    // total carries over.
    std::vector<std::int64_t> apl = s.applies_per_level;
    apl.resize(solver_->applies_per_level().size(), 0);
    if (s.applies_per_level.size() != apl.size()) std::fill(apl.begin(), apl.end(), 0);
    solver_->adopt_raw_state(s.u, s.v_half, s.time, s.element_applies, apl, s.blocks_applied);
    solver_->import_accumulators(s.frozen_forces, s.cumulative);
  }
};

/// Rank-parallel shared-memory backend: partitions the mesh and drives the
/// persistent-pool ThreadedLtsSolver under a fixed scheduler mode. One
/// registry entry per SchedulerMode, so the conformance grid exercises every
/// synchronization strategy without hand-written lists.
class ThreadedExecutor final : public Executor {
public:
  ThreadedExecutor(std::string name, const ExecutorContext& ctx, runtime::SchedulerMode mode)
      : Executor(std::move(name)), ctx_(ctx) {
    LTS_CHECK_MSG(ctx.cfg && ctx.mesh, "executor '" << this->name()
                                                    << "' needs ExecutorContext.cfg and .mesh "
                                                       "(it partitions the mesh)");
    scfg_ = ctx.cfg->scheduler;
    scfg_.mode = mode; // the registry key, not the legacy config field, decides
    LTS_CHECK_MSG(ctx.cfg->num_ranks > 1,
                  "executor '" << this->name() << "' needs num_ranks > 1 (got "
                               << ctx.cfg->num_ranks << ")");
    partition::PartitionerConfig pc;
    pc.strategy = ctx.cfg->partitioner;
    pc.num_parts = ctx.cfg->num_ranks;
    part_ = partition::partition_mesh(*ctx.mesh, ctx.levels->elem_level, ctx.levels->num_levels,
                                      pc);
    solver_ = std::make_unique<runtime::ThreadedLtsSolver>(*ctx.op, *ctx.levels, *ctx.structure,
                                                           part_, scfg_, integrator_for(ctx));
    if (ctx.cfg->fault.armed()) solver_->set_fault(ctx.cfg->fault);
  }

  [[nodiscard]] real_t time() const override { return solver_->time(); }
  [[nodiscard]] std::int64_t element_applies() const override { return solver_->element_applies(); }
  [[nodiscard]] std::int64_t blocks_applied() const override { return solver_->blocks_applied(); }
  [[nodiscard]] std::span<const real_t> v_half() const override { return solver_->v_half(); }
  [[nodiscard]] std::int64_t cycles() const override { return solver_->cycles_done(); }

  [[nodiscard]] ExecutorCounters counters() const override {
    return {solver_->busy_seconds(), solver_->stall_seconds(), solver_->steal_counts(),
            solver_->blocks_applied()};
  }
  [[nodiscard]] bool supports_feedback() const noexcept override { return true; }
  [[nodiscard]] runtime::ThreadedLtsSolver* threaded_solver() const noexcept override {
    return solver_.get();
  }
  [[nodiscard]] const partition::Partition* partition() const noexcept override { return &part_; }

  void drain_receivers(std::span<sem::Receiver> sinks) override {
    drain_traces(solver_->traces(), sinks);
  }

private:
  void do_set_state(std::span<const real_t> u0, std::span<const real_t> v0) override {
    solver_->set_state(u0, v0);
  }
  void do_advance_cycles(std::int64_t cycles) override {
    // An injected fault may surface as a throw (fault.kind=throw, or the
    // watchdog's WorkerStall on a stalled rank) — record the firing in the
    // event log either way before letting it propagate.
    const bool fired_before = solver_->fault_fired();
    const auto note = [&] {
      if (!fired_before && solver_->fault_fired())
        record_event({"fault-injected", "", solver_->cycles_done(),
                      "fault.kind=" + resilience::to_string(ctx_.cfg->fault.kind)});
    };
    try {
      solver_->run_cycles(static_cast<int>(cycles));
    } catch (...) {
      note();
      throw;
    }
    note();
  }
  // The solver's u lives in a first-touch-placed raw array (a span view, not
  // a std::vector), so state() goes through the base gather cache: one copy
  // per advance, stable vector identity between advances.
  void gather_state(std::vector<real_t>& out) const override {
    const auto u = solver_->u();
    out.assign(u.begin(), u.end());
  }
  void do_add_source(const sem::PointSource& src) override { solver_->add_source(src); }
  void do_add_receiver(gindex_t node, int component) override {
    solver_->add_receiver(node, component);
  }
  /// Phases, cycle count and roofline all come from the solver's own report
  /// (the per-rank slots it tallies on the pool workers); the adapter keeps
  /// its registry name and the counter vectors the base already copied.
  void fill_report(perf::RunReport& r) const override {
    perf::RunReport s = solver_->run_report();
    r.cycles = s.cycles;
    r.phases = std::move(s.phases);
    r.roofline = s.roofline;
  }

  [[nodiscard]] ExecutorState do_export_state() const override {
    ExecutorState s;
    s.u.assign(solver_->u().begin(), solver_->u().end());
    s.v_half.assign(solver_->v_half().begin(), solver_->v_half().end());
    s.time = solver_->time();
    s.dt = solver_->dt();
    s.cycles = solver_->cycles_done();
    s.element_applies = solver_->element_applies();
    s.blocks_applied = solver_->blocks_applied();
    // The threaded solver derives per-level work from the integer cycle count
    // (level k runs level_rate(k) substeps over E(k) per cycle), so the
    // per-level split is exact without per-level counters.
    const level_t nl = ctx_.levels->num_levels;
    s.applies_per_level.resize(static_cast<std::size_t>(nl), 0);
    for (level_t k = 1; k <= nl; ++k)
      s.applies_per_level[static_cast<std::size_t>(k - 1)] =
          solver_->cycles_done() * static_cast<std::int64_t>(level_rate(k)) *
          static_cast<std::int64_t>(
              ctx_.structure->eval_elems[static_cast<std::size_t>(k - 1)].size());
    s.integrator = std::string(solver_->integrator().name());
    s.integrator_aux = solver_->integrator().aux_state();
    s.frozen_forces = solver_->frozen_forces();
    s.cumulative = solver_->cumulative();
    return s;
  }

  void do_import_state(const ExecutorState& s) override {
    if (s.u.size() != solver_->u().size() || s.v_half.size() != s.u.size())
      LTS_RAISE(resilience::CheckpointMismatch,
                "checkpoint state has " << s.u.size() << " dofs but executor '" << name()
                                        << "' expects " << solver_->u().size());
    solver_->adopt_raw_state(s.u, s.v_half, s.time, s.cycles);
    solver_->import_accumulators(s.frozen_forces, s.cumulative);
    for (auto& t : solver_->traces()) {
      t.times.clear();
      t.values.clear();
    }
  }

  void do_adopt_state_from(const Executor& prev) override {
    // Cross-mode hand-off between threaded backends is fine (the solver's
    // adopt only requires the same operator/levels/structure; the partition
    // and scheduler may differ — that is the whole point of feedback
    // repartitioning).
    const auto* p = dynamic_cast<const ThreadedExecutor*>(&prev);
    LTS_CHECK_MSG(p, "executor '" << name() << "' cannot adopt state from '" << prev.name()
                                  << "' — backends hand off within their own kind");
    solver_->adopt_state_from(*p->solver_);
  }
  void do_refine_from_feedback() override {
    partition::FeedbackSignal sig;
    sig.busy_seconds = solver_->busy_seconds();
    sig.stall_seconds = solver_->stall_seconds();
    sig.steal_counts = solver_->steal_counts();

    partition::PartitionerConfig pc;
    pc.strategy = ctx_.cfg->partitioner;
    pc.num_parts = ctx_.cfg->num_ranks;
    part_ = partition::refine_with_feedback(*ctx_.mesh, ctx_.levels->elem_level,
                                            ctx_.levels->num_levels, part_, sig, pc);
    auto fresh = std::make_unique<runtime::ThreadedLtsSolver>(*ctx_.op, *ctx_.levels,
                                                              *ctx_.structure, part_, scfg_,
                                                              solver_->integrator());
    fresh->adopt_state_from(*solver_);
    solver_ = std::move(fresh);
  }

  ExecutorContext ctx_;
  runtime::SchedulerConfig scfg_;
  partition::Partition part_;
  std::unique_ptr<runtime::ThreadedLtsSolver> solver_;
};

} // namespace

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

ExecutorFactory& ExecutorFactory::instance() {
  static ExecutorFactory factory;
  return factory;
}

ExecutorFactory::ExecutorFactory() {
  register_backend(
      "newmark", "global explicit Newmark at the CFL minimum step (non-LTS reference)",
      [](const ExecutorContext& ctx) -> std::unique_ptr<Executor> {
        return std::make_unique<NewmarkExecutor>("newmark", ctx);
      },
      /*uses_lts_levels=*/false);
  register_backend("serial-lts",
                   "serial multi-level LTS-Newmark (paper Sec. II-C) — the conformance baseline",
                   [](const ExecutorContext& ctx) -> std::unique_ptr<Executor> {
                     return std::make_unique<SerialLtsExecutor>("serial-lts", ctx);
                   });
  for (const runtime::SchedulerMode mode : runtime::kAllSchedulerModes) {
    const std::string key = "threaded/" + runtime::to_string(mode);
    register_backend(key,
                     "rank-parallel LTS on the persistent thread pool, scheduler '" +
                         runtime::to_string(mode) + "'",
                     [key, mode](const ExecutorContext& ctx) -> std::unique_ptr<Executor> {
                       return std::make_unique<ThreadedExecutor>(key, ctx, mode);
                     });
  }
}

void ExecutorFactory::register_backend(std::string name, std::string description, Builder builder,
                                       bool uses_lts_levels) {
  LTS_CHECK_MSG(!name.empty() && builder, "executor registration needs a name and a builder");
  const auto [it, inserted] = backends_.emplace(
      std::move(name), Entry{std::move(builder), std::move(description), uses_lts_levels});
  LTS_CHECK_MSG(inserted, "executor '" << it->first << "' is already registered");
}

const ExecutorFactory::Entry& ExecutorFactory::entry_or_throw(std::string_view name) const {
  const auto it = backends_.find(name);
  if (it == backends_.end()) {
    std::ostringstream os;
    for (const auto& [key, entry] : backends_) os << "\n  " << key << " — " << entry.description;
    LTS_CHECK_MSG(false, "unknown executor '" << name << "'; registered backends:" << os.str());
  }
  return it->second;
}

std::unique_ptr<Executor> ExecutorFactory::create(std::string_view name,
                                                  const ExecutorContext& ctx) const {
  LTS_CHECK_MSG(ctx.op && ctx.levels && ctx.structure,
                "ExecutorContext needs at least op, levels and structure");
  return entry_or_throw(name).builder(ctx);
}

bool ExecutorFactory::contains(std::string_view name) const {
  return backends_.find(name) != backends_.end();
}

bool ExecutorFactory::uses_lts_levels(std::string_view name) const {
  return entry_or_throw(name).uses_lts_levels;
}

std::string ExecutorFactory::description(std::string_view name) const {
  return entry_or_throw(name).description;
}

std::vector<std::string> ExecutorFactory::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& [key, entry] : backends_) out.push_back(key);
  return out; // std::map iteration is already sorted
}

std::string resolve_executor_name(const SimulationConfig& cfg) {
  if (!cfg.executor.empty()) return cfg.executor;
  if (cfg.num_ranks > 1) return "threaded/" + runtime::to_string(cfg.scheduler.mode);
  return cfg.use_lts ? "serial-lts" : "newmark";
}

} // namespace ltswave::core
