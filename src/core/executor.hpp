#pragma once

/// \file executor.hpp
/// The pluggable execution-backend contract of the whole stack.
///
/// The paper's central claim is that ONE local-time-stepping scheme can be
/// driven by interchangeable execution strategies — plain barriers,
/// level-aware barriers, work stealing, multi-node MPI. `Executor` is that
/// seam as an API: a polymorphic backend that owns the dynamical state and
/// advances whole LTS cycles, created by name through `ExecutorFactory` from
/// the shared discretization (operator + levels + structure). The
/// `WaveSimulation` facade holds exactly one `Executor` and contains no
/// per-backend branching; a new backend (MPI, batched-kernel, GPU) is one
/// factory registration away and automatically appears in the conformance
/// suite, which enumerates the registry.
///
/// Contract invariants every backend must satisfy (enforced by
/// tests/test_executor.cpp against the serial-LTS baseline):
///  * set_state -> advance_cycles(n) -> state() reproduces the baseline
///    physics (to roundoff for LTS-scheme backends, to the discretization
///    tolerance for reference schemes like plain Newmark);
///  * sources registered before set_state contribute f(0) to the staggered
///    initial velocity; receivers sample at every cycle boundary;
///  * adopt_state_from(prev) continues prev's run exactly — state, clock,
///    work counters, sources and already-accumulated receiver traces all
///    carry over (the mid-run hand-off behind feedback repartitioning);
///  * state() is cached per advance: distributed backends gather once per
///    cycle, not once per call.
///
/// Ownership and thread-safety:
///  * An Executor owns its dynamical state and any worker pool it spins up;
///    the discretization objects in ExecutorContext are borrowed and must
///    outlive it (the facade owns both, so the ordering is structural there).
///  * The public API is *driving-thread only*: exactly one thread calls
///    set_state / advance_cycles / state / run_report at a time, and never
///    while an advance is in flight. Rank-parallel backends synchronize their
///    own workers internally; two executors never share mutable state, so
///    distinct instances may run on distinct threads.
///  * adopt_state_from is the hand-off seam: the adopting executor must be
///    pristine, `prev` must be quiescent (between advances) and is left
///    untouched — the caller decides when to destroy it. After adopt, the new
///    executor continues prev's clock, counters and traces exactly.

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "perf/run_report.hpp"
#include "sem/sources.hpp"

namespace ltswave::mesh {
class HexMesh;
}
namespace ltswave::partition {
struct Partition;
}
namespace ltswave::runtime {
class ThreadedLtsSolver;
}
namespace ltswave::sem {
class WaveOperator;
}

namespace ltswave::core {

struct LevelAssignment;
struct LtsStructure;
struct SimulationConfig;

/// Everything a backend may need to stand itself up. All pointers reference
/// objects owned by the caller (normally the WaveSimulation facade) and must
/// outlive the executor.
struct ExecutorContext {
  const sem::WaveOperator* op = nullptr;
  const LevelAssignment* levels = nullptr;
  const LtsStructure* structure = nullptr;
  const mesh::HexMesh* mesh = nullptr;
  const sem::SemSpace* space = nullptr;
  const SimulationConfig* cfg = nullptr;
};

/// Per-rank performance counters; empty vectors for backends without ranks
/// (the serial solvers). Sizes agree when non-empty. blocks_applied is
/// backend-wide: batched kernel calls consumed so far (every backend runs the
/// block path, so this is populated even when the per-rank vectors are not).
struct ExecutorCounters {
  std::vector<double> busy_seconds;
  std::vector<double> stall_seconds;
  std::vector<std::int64_t> steal_counts;
  std::int64_t blocks_applied = 0;

  [[nodiscard]] bool empty() const noexcept { return busy_seconds.empty(); }
};

/// The complete cross-cycle dynamical state of a backend at a cycle boundary
/// — the serializable image of what adopt_state_from hands off, minus the
/// sources/receivers (configuration, not state) and minus the drained
/// receiver traces (the facade owns those). This is what a checkpoint
/// captures (resilience/checkpoint.hpp).
///
/// `frozen_forces`/`cumulative` are the LTS schemes' per-level frozen-force
/// accumulators. They are redundant in value — every scheme recomputes them
/// from u at the start of a cycle — but their floating-point association
/// history is not: importing them bitwise makes a same-backend restore
/// reproduce the uninterrupted run bit for bit, while an import that drops
/// them (a cross-backend restore) agrees only to roundoff. Backends without
/// them (plain Newmark) leave both empty.
struct ExecutorState {
  std::vector<real_t> u;
  std::vector<real_t> v_half;
  real_t time = 0;
  real_t dt = 0; ///< the exporting backend's cycle step — restore sanity check
  /// Canonical name of the time integrator that produced this state
  /// ("newmark", "leapfrog-stab"; see core/integrator.hpp). A restore into a
  /// simulation running a different integrator is rejected — the staggered
  /// state layout is scheme-specific.
  std::string integrator = "newmark";
  /// Integrator-owned auxiliary state (empty for the built-in two-term
  /// schemes; multi-stage integrators serialize their extra registers here).
  std::vector<real_t> integrator_aux;
  std::int64_t cycles = 0;
  std::int64_t element_applies = 0;
  std::int64_t blocks_applied = 0;
  /// Per-level element applies (LTS backends; empty for single-level).
  std::vector<std::int64_t> applies_per_level;
  std::vector<std::vector<real_t>> frozen_forces; ///< A P_k u, k = 1..N-1
  std::vector<real_t> cumulative;                 ///< sum of frozen_forces

  bool operator==(const ExecutorState&) const = default;
};

class Executor {
public:
  virtual ~Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The registry key this backend was created under ("serial-lts",
  /// "threaded/level-aware", ...).
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

  /// Sets u(0) and the physical velocity du/dt(0); the backend computes its
  /// staggered internal state, folding in f(0) of already-registered sources.
  void set_state(std::span<const real_t> u0, std::span<const real_t> v0) {
    do_set_state(u0, v0);
    state_dirty_ = true;
  }

  /// Advances `cycles` coarse LTS cycles (for single-level schemes: steps).
  void advance_cycles(std::int64_t cycles) {
    if (cycles <= 0) return;
    do_advance_cycles(cycles);
    state_dirty_ = true;
  }

  /// The displacement vector, gathered from wherever the backend keeps it and
  /// cached until the next advance/set_state/adopt — repeated calls between
  /// advances cost nothing, and backends with distributed state gather once
  /// per cycle instead of once per call. Backends whose state already lives
  /// in one contiguous host vector (direct_state) skip the cache entirely:
  /// zero copies, exactly like the pre-Executor facade.
  [[nodiscard]] const std::vector<real_t>& state() const {
    if (const auto* direct = direct_state()) return *direct;
    if (state_dirty_) {
      gather_state(state_cache_);
      state_dirty_ = false;
    }
    return state_cache_;
  }

  [[nodiscard]] virtual real_t time() const = 0;
  [[nodiscard]] virtual std::int64_t element_applies() const = 0;
  /// Batched kernel calls consumed so far — element_applies' companion under
  /// the block execution layer (one call advances up to BatchPlan::width()
  /// elements). Carried across adopt_state_from like every work counter.
  [[nodiscard]] virtual std::int64_t blocks_applied() const = 0;

  /// Registers a point source. Call before set_state so the staggered initial
  /// velocity sees f(0); backends route injection however they execute (the
  /// threaded backend injects at the owning rank's level-local updates).
  void add_source(const sem::PointSource& src) {
    do_add_source(src);
    sources_.push_back(src);
  }

  /// Registers a receiver sampled at every cycle boundary; traces accumulate
  /// inside the backend until drain_receivers.
  void add_receiver(gindex_t node, int component) {
    do_add_receiver(node, component);
    receivers_.push_back({node, component});
  }

  /// Appends the accumulated per-receiver samples into `sinks` (one Receiver
  /// per add_receiver, in registration order) and clears the internal traces.
  virtual void drain_receivers(std::span<sem::Receiver> sinks) = 0;

  /// Adopts the complete run state of `prev` — dynamical state, clock, work
  /// counters, sources and receiver traces — so this executor continues
  /// prev's simulation mid-run. `prev` must be a backend of the same kind
  /// built over the same operator/levels/structure; this executor must be
  /// pristine (no sources/receivers registered, never advanced). Backends
  /// that cannot adopt throw CheckFailure with a clear message.
  void adopt_state_from(const Executor& prev) {
    LTS_CHECK_MSG(sources_.empty() && receivers_.empty(),
                  "adopt_state_from requires a pristine executor");
    do_adopt_state_from(prev);
    sources_ = prev.sources_;
    receivers_ = prev.receivers_;
    state_dirty_ = true;
  }

  /// Snapshots the complete cross-cycle dynamical state (see ExecutorState).
  /// Call between advances only.
  [[nodiscard]] ExecutorState export_state() const { return do_export_state(); }

  /// Overwrites this executor's dynamical state, clock and work counters with
  /// a snapshot — the checkpoint-restore counterpart of adopt_state_from.
  /// Unlike adopt, the target need not be pristine: sources/receivers must
  /// already be registered (they are configuration, recreated by the caller),
  /// any undrained internal receiver traces are discarded (the facade restores
  /// trace history separately), and the state may come from a *different*
  /// backend kind — frozen-force accumulators that do not fit are dropped and
  /// recomputed, exact to roundoff. Requires s.u to match this backend's
  /// problem size; throws resilience::CheckpointMismatch otherwise.
  void import_state(const ExecutorState& s) {
    do_import_state(s);
    state_dirty_ = true;
  }

  /// The staggered half-step velocity companion of state() — read-only view
  /// into the backend's live vector (HealthGuard scans it; export_state copies
  /// it). Same driving-thread-only rule as state().
  [[nodiscard]] virtual std::span<const real_t> v_half() const = 0;

  /// Coarse cycles advanced so far (steps, for single-level schemes).
  [[nodiscard]] virtual std::int64_t cycles() const = 0;

  /// Per-rank busy/stall/steal counters; empty for serial backends.
  [[nodiscard]] virtual ExecutorCounters counters() const { return {}; }

  /// Structured observability snapshot: per-phase timings, the per-rank
  /// counter vectors (identical to counters()), lifetime work counters and
  /// the plan's roofline record — the JSON-serializable record behind every
  /// BENCH_*.json. Common fields are assembled here; backends add their
  /// phases/cycles/roofline in fill_report. Call between advances only (same
  /// rule as counters()); accumulators are lifetime-monotone, so diffing two
  /// snapshots isolates an interval.
  [[nodiscard]] perf::RunReport run_report() const {
    perf::RunReport r;
    r.executor = name_;
    r.time = static_cast<double>(time());
    r.element_applies = element_applies();
    r.blocks_applied = blocks_applied();
    ExecutorCounters c = counters();
    r.rank_busy_seconds = std::move(c.busy_seconds);
    r.rank_stall_seconds = std::move(c.stall_seconds);
    r.rank_steal_counts = std::move(c.steal_counts);
    r.events = events_;
    fill_report(r);
    return r;
  }

  /// Resilience events recorded against this executor (injected faults; the
  /// Supervisor merges its own recovery events on top in the final report).
  [[nodiscard]] std::span<const perf::RunEvent> events() const noexcept { return events_; }

  /// Measured-cost repartitioning support (threaded backends).
  [[nodiscard]] virtual bool supports_feedback() const noexcept { return false; }

  /// Repartitions from the backend's own measured counters and continues the
  /// run on the refined layout. Throws CheckFailure when unsupported.
  void refine_from_feedback() {
    do_refine_from_feedback();
    state_dirty_ = true;
  }

  /// The rank-parallel solver driving this backend, when there is one —
  /// benches and examples read scheduler mode, counters and participation
  /// through this without the facade knowing backend types.
  [[nodiscard]] virtual runtime::ThreadedLtsSolver* threaded_solver() const noexcept {
    return nullptr;
  }

  /// The mesh partition driving this backend (nullptr for serial backends).
  [[nodiscard]] virtual const partition::Partition* partition() const noexcept { return nullptr; }

  /// Sources/receivers registered so far (the master record adopt copies).
  [[nodiscard]] std::span<const sem::PointSource> sources() const noexcept { return sources_; }
  struct ReceiverRecord {
    gindex_t node = 0;
    int component = 0;
  };
  [[nodiscard]] std::span<const ReceiverRecord> receivers() const noexcept { return receivers_; }

protected:
  explicit Executor(std::string name) : name_(std::move(name)) {}

  virtual void do_set_state(std::span<const real_t> u0, std::span<const real_t> v0) = 0;
  virtual void do_advance_cycles(std::int64_t cycles) = 0;
  /// Return the backend's live displacement vector when it already is one
  /// contiguous host vector (serial adapters) — state() then aliases it with
  /// no copy. Distributed backends return nullptr and gather instead.
  [[nodiscard]] virtual const std::vector<real_t>* direct_state() const { return nullptr; }
  virtual void gather_state(std::vector<real_t>& out) const = 0;
  virtual void do_add_source(const sem::PointSource& src) = 0;
  virtual void do_add_receiver(gindex_t node, int component) = 0;
  virtual void do_adopt_state_from(const Executor& prev) = 0;
  [[nodiscard]] virtual ExecutorState do_export_state() const = 0;
  virtual void do_import_state(const ExecutorState& s) = 0;
  /// Backend hook for run_report(): add phase stats, cycles and the roofline
  /// record. The default leaves the common fields as assembled.
  virtual void fill_report(perf::RunReport& /*report*/) const {}
  virtual void do_refine_from_feedback() {
    LTS_CHECK_MSG(false, "executor '" << name_ << "' does not support feedback repartitioning "
                                      << "(needs a rank-parallel backend, num_ranks > 1)");
  }
  /// Backends append resilience history (fault firings) here; shows up in
  /// run_report().events. Driving-thread only, like every public entry point.
  void record_event(perf::RunEvent event) { events_.push_back(std::move(event)); }

private:
  std::string name_;
  std::vector<perf::RunEvent> events_;
  std::vector<sem::PointSource> sources_;
  std::vector<ReceiverRecord> receivers_;
  mutable std::vector<real_t> state_cache_;
  mutable bool state_dirty_ = true;
};

/// String-keyed registry of execution backends. Builtins ("newmark",
/// "serial-lts", "threaded/<mode>" for every SchedulerMode) self-register on
/// first use; external backends (MPI, batched-kernel, ...) call
/// register_backend once at startup and every facade, bench and conformance
/// grid picks them up by name.
class ExecutorFactory {
public:
  using Builder = std::function<std::unique_ptr<Executor>(const ExecutorContext&)>;

  static ExecutorFactory& instance();

  /// `uses_lts_levels` declares whether the backend runs the multi-level LTS
  /// scheme (the facade then assigns real levels) or a single-level reference
  /// scheme at the global minimum step ("newmark"). Throws on duplicate name.
  void register_backend(std::string name, std::string description, Builder builder,
                        bool uses_lts_levels = true);

  /// Builds the named backend; throws CheckFailure listing every registered
  /// name when `name` is unknown. Every backend needs at least op, levels and
  /// structure; individual backends may require more and throw a CheckFailure
  /// naming the missing field (the threaded builtins need mesh and cfg to
  /// partition).
  [[nodiscard]] std::unique_ptr<Executor> create(std::string_view name,
                                                 const ExecutorContext& ctx) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] bool uses_lts_levels(std::string_view name) const;
  [[nodiscard]] std::string description(std::string_view name) const;

  /// All registered backend names, sorted — the conformance suite and benches
  /// iterate this instead of hand-written lists.
  [[nodiscard]] std::vector<std::string> names() const;

private:
  ExecutorFactory();

  struct Entry {
    Builder builder;
    std::string description;
    bool uses_lts_levels = true;
  };
  const Entry& entry_or_throw(std::string_view name) const;

  std::map<std::string, Entry, std::less<>> backends_;
};

/// The registry key `cfg` resolves to: `cfg.executor` verbatim when set, else
/// the legacy-field shim — num_ranks > 1 selects "threaded/<scheduler mode>",
/// use_lts selects "serial-lts", otherwise "newmark". Keeping the shim here
/// (not in the facade) makes `SimulationConfig{num_ranks, scheduler}` call
/// sites and the executor-name API provably identical.
[[nodiscard]] std::string resolve_executor_name(const SimulationConfig& cfg);

} // namespace ltswave::core
