#pragma once

/// \file lts_newmark.hpp
/// Multi-level LTS-Newmark (paper Sec. II, Algorithm 1 generalized to N
/// levels). Two implementations:
///
///  * LtsNewmarkReference — a direct transcription of the recursive scheme on
///    full-length global vectors. Every substep evaluates A P_k u with column
///    masking but updates *all* rows, exactly as the algebra is written. Used
///    as the ground truth in tests; O(levels) full vectors of memory and
///    O(N_dof) work per substep, so it enjoys no LTS speedup.
///
///  * LtsNewmarkSolver — the production scheme (paper Sec. II-C: "working out
///    the minimal set of required numerical operations ... requires great
///    care"). Per level k it touches only:
///      - E(k) elements for force evaluations (own + halo elements),
///      - R(k+1) rows for the velocity reconstruction,
///      - S(k) rows for the collapsed leapfrog update (rows whose forces are
///        frozen during finer substeps evolve exactly as a single leapfrog
///        step with that frozen force, so the fine recursion is skipped).
///    Work per cycle is sum_k p_k |E(k)| element applies, matching the
///    speedup model (Eq. 9) up to the halo overhead.
///
/// Both advance a full Delta-t cycle per step() and agree to roundoff; with a
/// single level both reduce to the global Newmark scheme exactly.

#include <vector>

#include "core/integrator.hpp"
#include "core/lts_levels.hpp"
#include "core/newmark.hpp"
#include "perf/run_report.hpp"

namespace ltswave::core {

/// Production multi-level LTS-Newmark solver.
class LtsNewmarkSolver {
public:
  /// `integ` selects the deepest-level substep rule (see integrator.hpp);
  /// the default reproduces the historical Newmark scheme bit-for-bit.
  LtsNewmarkSolver(const sem::WaveOperator& op, const LevelAssignment& levels,
                   const LtsStructure& structure, Integrator integ = Integrator::newmark());

  [[nodiscard]] const Integrator& integrator() const noexcept { return integ_; }

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);
  void add_source(const sem::PointSource& src);
  void set_fixed_nodes(std::span<const gindex_t> nodes);

  /// Overwrites the raw staggered state (u, v^{t-dt/2}), the clock and the
  /// work counters — the executor hand-off used by Executor::adopt_state_from.
  /// Exact at cycle boundaries: the frozen force / cumulative buffers are
  /// recomputed from u at the start of every cycle (see step()), so (u, v,
  /// time) is the solver's complete cross-cycle dynamical state.
  void adopt_raw_state(std::span<const real_t> u, std::span<const real_t> v_half, real_t time,
                       std::int64_t applies_total, std::span<const std::int64_t> applies_per_level,
                       std::int64_t blocks_applied);

  /// Restores the frozen per-level forces and the cumulative sum captured by
  /// a checkpoint of the same level structure. Recompute-from-u at the next
  /// cycle start already makes a restore *numerically* exact; importing the
  /// accumulators additionally makes it *bitwise* exact, because the
  /// incremental fold `cumulative += fresh - frozen` reassociates differently
  /// from zeroed buffers. Shape mismatches (a cross-scheme checkpoint) are
  /// silently ignored — recompute semantics then apply.
  void import_accumulators(const std::vector<std::vector<real_t>>& forces,
                           std::span<const real_t> cumulative);

  [[nodiscard]] const std::vector<std::vector<real_t>>& frozen_forces() const noexcept {
    return forces_;
  }
  [[nodiscard]] const std::vector<real_t>& cumulative() const noexcept { return cumulative_; }

  /// Advances one LTS cycle (one coarse step Delta-t).
  void step();

  [[nodiscard]] real_t time() const noexcept { return time_; }
  [[nodiscard]] real_t dt() const noexcept { return dt_; }
  [[nodiscard]] const std::vector<real_t>& u() const noexcept { return u_; }
  /// Mutable state access for the fault-injection harness (NaN pokes).
  [[nodiscard]] std::vector<real_t>& u() noexcept { return u_; }
  [[nodiscard]] const std::vector<real_t>& v_half() const noexcept { return v_; }
  [[nodiscard]] level_t num_levels() const noexcept { return levels_->num_levels; }

  /// Element applies so far, total and per level (work counters used by the
  /// serial-efficiency bench and by the machine-model calibration).
  [[nodiscard]] std::int64_t element_applies() const noexcept { return applies_total_; }
  [[nodiscard]] const std::vector<std::int64_t>& applies_per_level() const noexcept {
    return applies_per_level_;
  }
  /// Batched kernel calls so far (every force evaluation runs the block path).
  [[nodiscard]] std::int64_t blocks_applied() const noexcept { return blocks_applied_; }

  /// The level-grouped batched execution plan (roofline accounting).
  [[nodiscard]] const sem::BatchPlan& plan() const noexcept { return plan_; }

  /// Appends this solver's phase accumulators — "eval.L<k>" (per-level block
  /// kernel time), "reduce" (Minv scaling + cumulative-force folds) and
  /// "update" (row updates + reconstructions), plus "sources" when any are
  /// registered — onto `report`. Lifetime-monotone, timed at phase boundaries
  /// only (never inside apply_add_blocks).
  void fill_phases(perf::RunReport& report) const;

private:
  void recompute_force(level_t k);
  void apply_level_blocks(level_t k);
  void run_level(level_t k, real_t t0);
  void collapsed_update(level_t k, std::span<const gindex_t> rows, bool first, SubstepCoeffs cs,
                        real_t t_sub, std::vector<real_t>& vt, const real_t* extra);
  void apply_sources_to(level_t k, real_t t_sub, std::vector<real_t>& force_accum);
  void clear_source_scratch();

  const sem::WaveOperator* op_;
  const LevelAssignment* levels_;
  const LtsStructure* structure_;
  Integrator integ_;
  real_t dt_;
  real_t time_ = 0;
  real_t cycle_t0_ = 0; ///< start of the current cycle; sources freeze here
  int ncomp_;

  std::vector<real_t> inv_mass_; // one entry per node (components share it);
                                 // Dirichlet nodes zeroed
  std::vector<real_t> u_, v_;
  std::vector<real_t> scratch_;               // K-apply target
  std::vector<real_t> cumulative_;            // C = sum_{j<=N-1} forces[j]
  std::vector<std::vector<real_t>> forces_;   // frozen A P_k u, k = 1..N-1
  std::vector<std::vector<real_t>> vt_;       // aux velocities, k = 2..N
  std::vector<std::vector<real_t>> usave_;    // parent field save, k = 1..N-1
  std::vector<std::vector<sem::PointSource>> sources_by_level_; // by rho(node)
  std::vector<sem::PointSource> sources_;
  std::vector<real_t> src_scratch_;      // persistently zero between uses
  std::vector<std::size_t> src_dirty_;   // dofs touched in src_scratch_

  sem::KernelWorkspace ws_;
  /// Level-grouped batched execution plan: group k-1 holds E(k)'s blocks,
  /// level-homogeneous elements first so the leading blocks are mask-free.
  sem::BatchPlan plan_;
  std::int64_t applies_total_ = 0;
  std::vector<std::int64_t> applies_per_level_;
  std::int64_t blocks_applied_ = 0;

  // Phase accumulators (fill_phases). One WallTimer read per phase region per
  // substep — nothing inside the block kernels themselves.
  std::vector<double> eval_seconds_;          // per level
  std::vector<std::int64_t> eval_count_;      // per level
  double reduce_seconds_ = 0;
  std::int64_t reduce_count_ = 0;
  double update_seconds_ = 0;
  std::int64_t update_count_ = 0;
  double source_seconds_ = 0;
  std::int64_t source_count_ = 0;
};

/// Reference implementation (tests only).
class LtsNewmarkReference {
public:
  LtsNewmarkReference(const sem::WaveOperator& op, const LevelAssignment& levels,
                      const LtsStructure& structure, Integrator integ = Integrator::newmark());

  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);
  void step();

  [[nodiscard]] real_t time() const noexcept { return time_; }
  [[nodiscard]] real_t dt() const noexcept { return dt_; }
  [[nodiscard]] const std::vector<real_t>& u() const noexcept { return u_; }
  [[nodiscard]] const std::vector<real_t>& v_half() const noexcept { return v_; }

private:
  std::vector<real_t> apply_level(level_t k, const std::vector<real_t>& field);
  std::vector<real_t> run_level(level_t k, const std::vector<real_t>& u0,
                                const std::vector<real_t>& frozen);

  const sem::WaveOperator* op_;
  const LevelAssignment* levels_;
  const LtsStructure* structure_;
  Integrator integ_;
  real_t dt_;
  real_t time_ = 0;
  int ncomp_;
  std::vector<real_t> inv_mass_;
  std::vector<real_t> u_, v_;
  sem::KernelWorkspace ws_;
};

} // namespace ltswave::core
