#include "core/integrator.hpp"

#include "common/check.hpp"

namespace ltswave::core {

Integrator Integrator::parse(std::string_view name) {
  if (name.empty() || name == "newmark") return newmark();
  if (name == "leapfrog-stab" || name == "stabilized-leapfrog") return leapfrog_stab();
  LTS_CHECK_MSG(false,
                "unknown integrator '" << name << "' (want " << names_help() << ")");
  return newmark();
}

std::string_view Integrator::name() const noexcept {
  switch (kind_) {
    case IntegratorKind::Newmark: return "newmark";
    case IntegratorKind::LeapfrogStab: return "leapfrog-stab";
  }
  return "newmark";
}

std::string_view Integrator::names_help() noexcept { return "newmark | leapfrog-stab"; }

} // namespace ltswave::core
