#pragma once

/// \file newmark.hpp
/// Global explicit Newmark time stepping (paper Eq. 5-6): the non-LTS
/// reference scheme, forced by the CFL condition (Eq. 7) to advance the whole
/// mesh at the globally smallest stable step.
///
/// u and v are staggered by dt/2:
///   v^{n+1/2} = v^{n-1/2} - dt * Minv K u^n  (+ dt * Minv f(t_n))
///   u^{n+1}   = u^n + dt * v^{n+1/2}

#include <vector>

#include "perf/run_report.hpp"
#include "sem/sources.hpp"
#include "sem/wave_operator.hpp"

namespace ltswave::core {

class NewmarkSolver {
public:
  NewmarkSolver(const sem::WaveOperator& op, real_t dt);

  /// Sets u(0) and the physical velocity du/dt(0); computes the staggered
  /// v^{-1/2} to second order internally.
  void set_state(std::span<const real_t> u0, std::span<const real_t> v0);

  /// Overwrites the raw staggered state (u^n, v^{n-1/2}), the clock and the
  /// work counters — the executor hand-off used by Executor::adopt_state_from.
  /// Unlike set_state this applies no initial-condition staggering: the inputs
  /// are another solver's internal state at a step boundary, adopted exactly.
  void adopt_raw_state(std::span<const real_t> u, std::span<const real_t> v_half, real_t time,
                       std::int64_t element_applies, std::int64_t blocks_applied);

  void add_source(const sem::PointSource& src) { sources_.push_back(src); }

  /// Dirichlet nodes: clamped by zeroing the inverse mass on those rows.
  void set_fixed_nodes(std::span<const gindex_t> nodes);

  /// Advances one step of size dt.
  void step();

  [[nodiscard]] real_t time() const noexcept { return time_; }
  [[nodiscard]] real_t dt() const noexcept { return dt_; }
  [[nodiscard]] const std::vector<real_t>& u() const noexcept { return u_; }
  [[nodiscard]] const std::vector<real_t>& v_half() const noexcept { return v_; }
  [[nodiscard]] std::vector<real_t>& u() noexcept { return u_; }
  [[nodiscard]] const sem::WaveOperator& op() const noexcept { return *op_; }

  /// Total element stiffness applications so far (work counter).
  [[nodiscard]] std::int64_t element_applies() const noexcept { return applies_; }
  /// Batched kernel calls so far (every apply runs the block path; one call
  /// covers up to BatchPlan::width() elements).
  [[nodiscard]] std::int64_t blocks_applied() const noexcept { return blocks_; }

  /// Appends this solver's phase accumulators ("eval.L1" full-mesh block
  /// kernel time, "update" staggered row update, "sources" when any are
  /// registered) onto `report`. Lifetime-monotone.
  void fill_phases(perf::RunReport& report) const;

private:
  void apply_full();

  const sem::WaveOperator* op_;
  real_t dt_;
  real_t time_ = 0;
  int ncomp_;
  std::vector<real_t> inv_mass_; // per node (components share it); Dirichlet nodes zeroed
  std::vector<real_t> u_, v_, scratch_;
  std::vector<sem::PointSource> sources_;
  sem::KernelWorkspace ws_;
  std::int64_t applies_ = 0;
  std::int64_t blocks_ = 0;

  // Phase accumulators (fill_phases); timed at phase boundaries only.
  double eval_seconds_ = 0;
  std::int64_t eval_count_ = 0;
  double update_seconds_ = 0;
  std::int64_t update_count_ = 0;
  double source_seconds_ = 0;
  std::int64_t source_count_ = 0;
};

} // namespace ltswave::core
